// Incremental checkpoint/restore: generation-based dirty tracking on the
// address space, COW aliasing safety between live memory and images, delta
// restores that are bit-identical to full rebuilds, and the DynaCut
// incremental engine (per-pid baselines, dirty-only dumps, in-place
// restores) being observably equivalent to the always-full baseline.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/dynacut.hpp"
#include "core/txn.hpp"
#include "image/checkpoint.hpp"
#include "image/image.hpp"
#include "melf/builder.hpp"
#include "obs/bus.hpp"
#include "obs/sinks.hpp"
#include "os/os.hpp"
#include "vm/addrspace.hpp"

namespace dynacut::core {
namespace {

namespace sys = os::sys;
using analysis::CovBlock;
using melf::Binary;
using melf::ProgramBuilder;

// ---------------------------------------------------------------------------
// Address-space dirty tracking (the soft-dirty-bit analogue)
// ---------------------------------------------------------------------------

std::set<uint64_t> dirty_set(const vm::AddressSpace& mem,
                             const vm::MemEpoch& since) {
  auto dirty = mem.dirty_pages_since(since);
  EXPECT_TRUE(dirty.has_value());
  return dirty ? std::set<uint64_t>(dirty->begin(), dirty->end())
               : std::set<uint64_t>{};
}

TEST(DirtyTracking, PokesStampOnlyWrittenPages) {
  vm::AddressSpace mem;
  mem.map(0x1000, 4 * kPageSize, kProtRead | kProtWrite, "rw");
  uint64_t v = 7;
  mem.poke(0x1000, &v, 8);
  mem.poke(0x3000, &v, 8);

  vm::MemEpoch e = mem.snapshot_epoch();
  EXPECT_TRUE(dirty_set(mem, e).empty());

  mem.poke(0x2008, &v, 8);
  EXPECT_EQ(dirty_set(mem, e), (std::set<uint64_t>{0x2000}));

  // Re-writing an already-dirty page does not add anything.
  mem.poke(0x2010, &v, 8);
  EXPECT_EQ(dirty_set(mem, e), (std::set<uint64_t>{0x2000}));
}

TEST(DirtyTracking, ProtectIsCleanUnmapInstallDropAreDirty) {
  vm::AddressSpace mem;
  mem.map(0x1000, 4 * kPageSize, kProtRead | kProtWrite, "rw");
  uint64_t v = 1;
  mem.poke(0x1000, &v, 8);
  mem.poke(0x2000, &v, 8);
  vm::PageRef keep = mem.page_block(0x2000);

  vm::MemEpoch e = mem.snapshot_epoch();

  // Permission changes leave page contents alone: not dirty.
  mem.protect(0x1000, kPageSize, kProtRead);
  EXPECT_TRUE(dirty_set(mem, e).empty());

  // Unmapping a populated page must dirty it, or an incremental dump would
  // keep serving the stale baseline copy.
  mem.unmap(0x2000, kPageSize);
  EXPECT_EQ(dirty_set(mem, e), (std::set<uint64_t>{0x2000}));

  // install_page_block = new content; adopt_page_block = identical bytes
  // re-shared (decode-cache-preserving), so only install stamps.
  mem.map(0x2000, kPageSize, kProtRead | kProtWrite, "back");
  mem.install_page_block(0x3000, keep);
  EXPECT_EQ(dirty_set(mem, e), (std::set<uint64_t>{0x2000, 0x3000}));
  mem.adopt_page_block(0x3000, keep);
  EXPECT_EQ(dirty_set(mem, e), (std::set<uint64_t>{0x2000, 0x3000}));

  mem.drop_page(0x1000);
  EXPECT_EQ(dirty_set(mem, e), (std::set<uint64_t>{0x1000, 0x2000, 0x3000}));
}

TEST(DirtyTracking, FastPathWriteAfterEpochRestamps) {
  vm::AddressSpace mem;
  mem.map(0x1000, kPageSize, kProtRead | kProtWrite, "rw");
  uint64_t v = 1;
  // Two writes to the same page establish the cached write fast path.
  mem.poke(0x1000, &v, 8);
  mem.poke(0x1008, &v, 8);

  vm::MemEpoch e = mem.snapshot_epoch();
  // The fast path must not survive the epoch: this write needs a new stamp.
  mem.poke(0x1010, &v, 8);
  EXPECT_EQ(dirty_set(mem, e), (std::set<uint64_t>{0x1000}));
}

TEST(DirtyTracking, ForeignAndInvalidEpochsRejected) {
  vm::AddressSpace mem;
  mem.map(0x1000, kPageSize, kProtRead | kProtWrite, "rw");
  vm::MemEpoch e = mem.snapshot_epoch();

  EXPECT_FALSE(mem.dirty_pages_since(vm::MemEpoch{}).has_value());

  // Copies take a fresh asid: an epoch taken on the source is meaningless
  // on the copy and must force a full dump.
  vm::AddressSpace copy = mem;
  EXPECT_FALSE(copy.dirty_pages_since(e).has_value());
  EXPECT_TRUE(mem.dirty_pages_since(e).has_value());

  // An epoch from the future (e.g. recorded against a rebuilt space that
  // recycled nothing) is equally untrustworthy.
  vm::MemEpoch future = e;
  future.epoch += 100;
  EXPECT_FALSE(mem.dirty_pages_since(future).has_value());
}

TEST(DirtyTracking, CowWriteThroughSharedBlockStampsAndClones) {
  vm::AddressSpace mem;
  mem.map(0x1000, kPageSize, kProtRead | kProtWrite, "rw");
  uint64_t v = 0x11;
  mem.poke(0x1000, &v, 8);

  vm::PageRef shared = mem.page_block(0x1000);
  std::vector<uint8_t> before = *shared;
  vm::MemEpoch e = mem.snapshot_epoch();

  uint64_t w = 0x22;
  mem.poke(0x1000, &w, 8);

  // The live write went to a private clone: the shared block (an image's
  // view of the page) is untouched, and the page is dirty.
  EXPECT_EQ(*shared, before);
  EXPECT_NE(mem.page_block(0x1000).get(), shared.get());
  EXPECT_EQ(dirty_set(mem, e), (std::set<uint64_t>{0x1000}));
  uint64_t r = 0;
  mem.peek(0x1000, &r, 8);
  EXPECT_EQ(r, 0x22u);
}

// ---------------------------------------------------------------------------
// Rigs
// ---------------------------------------------------------------------------

/// "mut": a single process with a removable >2-page function "feat" (error
/// mark "feat_err" for kRedirect) whose main loop dirties two data pages of
/// a 16-page bss buffer per iteration, then sleeps.
std::shared_ptr<const Binary> mut_guest() {
  static std::shared_ptr<const Binary> bin = [] {
    ProgramBuilder b("mut");
    b.bss("buf", 16 * kPageSize);
    auto& f = b.func("feat");
    for (size_t i = 0; i < 2 * kPageSize + 128; ++i) f.nop();
    f.mov_ri(0, 7).ret();
    f.label("err").mark("feat_err").mov_ri(0, 1).ret();
    auto& m = b.func("main");
    m.label("loop")
        .mov_sym(1, "buf")
        .add_ri(3, 1)
        .store(1, 0, 3)
        .store(1, 2 * int32_t(kPageSize), 3)
        .mov_ri(1, 500)
        .sys(sys::kNanosleep)
        .jmp("loop");
    b.set_entry("main");
    return std::make_shared<Binary>(b.link());
  }();
  return bin;
}

/// "grp": mut plus a forked worker — the group case.
std::shared_ptr<const Binary> grp_guest() {
  static std::shared_ptr<const Binary> bin = [] {
    ProgramBuilder b("grp");
    b.bss("buf", 4 * kPageSize);
    auto& f = b.func("feat");
    for (size_t i = 0; i < 2 * kPageSize + 128; ++i) f.nop();
    f.mov_ri(0, 7).ret();
    f.label("err").mark("feat_err").mov_ri(0, 1).ret();
    auto& m = b.func("main");
    m.sys(sys::kFork);
    m.label("loop")
        .mov_sym(1, "buf")
        .add_ri(3, 1)
        .store(1, 0, 3)
        .mov_ri(1, 500)
        .sys(sys::kNanosleep)
        .jmp("loop");
    b.set_entry("main");
    return std::make_shared<Binary>(b.link());
  }();
  return bin;
}

template <typename GuestFn>
struct Rig {
  os::Os vos;
  int pid = 0;

  explicit Rig(GuestFn guest) {
    pid = vos.spawn(guest());
    vos.run(3000);
  }
};

FeatureSpec mut_spec() {
  auto bin = mut_guest();
  FeatureSpec s;
  s.name = "feat";
  s.blocks = {CovBlock{"mut", bin->find_symbol("feat")->value,
                       static_cast<uint32_t>(2 * kPageSize)}};
  s.redirect_module = "mut";
  s.redirect_offset = bin->find_symbol("feat_err")->value;
  return s;
}

/// Cost model with every term zeroed: both checkpoint modes then charge the
/// virtual clock identically (nothing), so two rigs driven through
/// different modes keep identical clocks and stay comparable bit-for-bit.
CostModel zero_costs() {
  CostModel m;
  m.checkpoint_base_ns = m.checkpoint_per_page_ns = 0;
  m.restore_base_ns = m.restore_per_page_ns = 0;
  m.checkpoint_delta_base_ns = m.restore_delta_base_ns = 0;
  m.patch_per_block_ns = m.unmap_per_page_ns = 0;
  m.inject_base_ns = m.inject_per_reloc_ns = 0;
  return m;
}

/// Bit-exact process state (mirrors txn_test's rollback invariant).
struct Snap {
  std::map<uint64_t, std::vector<uint8_t>> pages;
  std::vector<std::tuple<uint64_t, uint64_t, uint32_t, std::string>> vmas;
  uint64_t ip = 0;

  static Snap of(const os::Process& p) {
    Snap s;
    for (uint64_t page : p.mem.populated_pages()) {
      auto bytes = p.mem.page_bytes(page);
      s.pages.emplace(page, std::vector<uint8_t>(bytes.begin(), bytes.end()));
    }
    for (const auto& [start, v] : p.mem.vmas()) {
      s.vmas.emplace_back(v.start, v.end, v.prot, v.name);
    }
    s.ip = p.cpu.ip;
    return s;
  }

  bool operator==(const Snap&) const = default;
};

// ---------------------------------------------------------------------------
// COW aliasing between live memory and images
// ---------------------------------------------------------------------------

TEST(CowAliasing, LiveWritesAndImageEditsAreIsolated) {
  Rig rig(mut_guest);
  image::ProcessImage img = image::checkpoint(rig.vos, {.pid = rig.pid}).img;

  os::Process* p = rig.vos.process(rig.pid);
  uint64_t buf = p->module_named("mut")->binary->find_symbol("buf")->value +
                 p->module_named("mut")->base;
  std::vector<uint8_t> img_page = img.read_bytes(buf & ~(kPageSize - 1),
                                                 kPageSize);

  // Let the guest run: it keeps writing its buffer through pages that the
  // image currently shares. The image must not see any of it.
  image::restore(rig.vos, {.pid = rig.pid, .img = &img});
  rig.vos.run(4000);
  EXPECT_EQ(img.read_bytes(buf & ~(kPageSize - 1), kPageSize), img_page);

  // And the reverse: editing the image must not write through to the
  // process it was dumped from.
  std::vector<uint8_t> live_before(kPageSize);
  p->mem.peek(buf & ~(kPageSize - 1), live_before.data(), kPageSize);
  img.write_u64(buf, 0xdeadbeefULL);
  std::vector<uint8_t> live_after(kPageSize);
  p->mem.peek(buf & ~(kPageSize - 1), live_after.data(), kPageSize);
  EXPECT_EQ(live_after, live_before);
}

TEST(CowAliasing, ImageStoreSharesBlocksAcrossCopies) {
  Rig rig(mut_guest);
  image::ProcessImage img = image::checkpoint(rig.vos, {.pid = rig.pid}).img;
  image::restore(rig.vos, {.pid = rig.pid, .img = &img});

  image::ImageStore store;
  store.put(image::ImageKey{1, "a"}, img);
  const uint64_t one_copy = store.resident_bytes();
  store.put(image::ImageKey{1, "b"}, img);
  EXPECT_EQ(store.bytes_used(), 2 * img.pages.logical_bytes());
  // Both stored copies alias the same blocks: the second put() copies
  // metadata only, adding zero resident bytes. Resident for one copy can
  // itself sit below logical — the content-addressed BlockStore interns
  // identical pages (e.g. zero-fill) within a single image too.
  EXPECT_EQ(store.resident_bytes(), one_copy);
  EXPECT_LE(one_copy, img.pages.logical_bytes());
  EXPECT_GT(one_copy, 0u);
}

// ---------------------------------------------------------------------------
// Delta restore ≡ full restore
// ---------------------------------------------------------------------------

TEST(DeltaRestore, BitIdenticalToFullRebuild) {
  // Two identical deterministic rigs; same image, restored via the delta
  // path on one and the full rebuild on the other.
  Rig a(mut_guest);
  Rig b(mut_guest);
  ASSERT_EQ(a.pid, b.pid);

  image::ProcessImage img_a = image::checkpoint(a.vos, {.pid = a.pid}).img;
  image::ProcessImage img_b = image::checkpoint(b.vos, {.pid = b.pid}).img;
  ASSERT_EQ(img_a.encode(), img_b.encode());

  uint64_t asid_a = a.vos.process(a.pid)->mem.asid();
  image::RestoreStats ra = image::restore(
      a.vos,
      {.pid = a.pid, .img = &img_a, .mode = image::RestoreMode::kDelta});
  image::RestoreStats rb = image::restore(
      b.vos, {.pid = b.pid, .img = &img_b, .mode = image::RestoreMode::kFull});
  EXPECT_TRUE(ra.in_place);
  EXPECT_FALSE(rb.in_place);
  // Nothing diverged between dump and restore: the delta path writes no
  // pages at all, the full path rebuilds everything.
  EXPECT_EQ(ra.pages_restored, 0u);
  EXPECT_EQ(ra.pages_kept, ra.pages_total);
  EXPECT_EQ(rb.pages_restored, rb.pages_total);

  // In-place restore keeps the address-space identity (decode caches stay
  // valid); the rebuild deliberately gets a fresh one.
  EXPECT_EQ(a.vos.process(a.pid)->mem.asid(), asid_a);

  EXPECT_EQ(Snap::of(*a.vos.process(a.pid)), Snap::of(*b.vos.process(b.pid)));

  // Run both onward: identical trajectories.
  a.vos.run(4000);
  b.vos.run(4000);
  EXPECT_EQ(Snap::of(*a.vos.process(a.pid)), Snap::of(*b.vos.process(b.pid)));
}

TEST(DeltaRestore, ReconcilesDivergedMemoryAndVmas) {
  Rig rig(mut_guest);
  image::ProcessImage img = image::checkpoint(rig.vos, {.pid = rig.pid}).img;
  os::Process* p = rig.vos.process(rig.pid);
  Snap before = Snap::of(*p);

  // Diverge the frozen process behind the image's back: dirty a page the
  // image holds, populate a page the image lacks (inside a matching VMA),
  // and map a whole stray VMA.
  uint64_t buf = p->module_named("mut")->binary->find_symbol("buf")->value +
                 p->module_named("mut")->base;
  uint64_t base = buf & ~(kPageSize - 1);
  uint64_t junk = 0x5151;
  p->mem.poke(base, &junk, 8);
  p->mem.poke(base + 5 * kPageSize, &junk, 8);
  uint64_t stray = p->mem.find_free(0x10000, 2 * kPageSize);
  p->mem.map(stray, 2 * kPageSize, kProtRead | kProtWrite, "stray");
  p->mem.poke(stray, &junk, 8);

  image::RestoreStats st =
      image::restore(rig.vos, {.pid = rig.pid, .img = &img});
  EXPECT_TRUE(st.in_place);
  EXPECT_EQ(Snap::of(*p), before);
  // Exactly the diverged page was written back, the image-absent page was
  // dropped, and only the stray VMA changed (its page vanished with it).
  EXPECT_EQ(st.pages_restored, 1u);
  EXPECT_EQ(st.pages_dropped, 1u);
  EXPECT_EQ(st.vmas_changed, 1u);
  EXPECT_EQ(st.pages_kept, st.pages_total - st.pages_restored);
}

TEST(DeltaRestore, EpochInvalidatedByRebuildAndRestoreNew) {
  Rig rig(mut_guest);
  image::ProcessImage img = image::checkpoint(rig.vos, {.pid = rig.pid}).img;
  vm::MemEpoch e = rig.vos.mem_epoch(rig.pid);
  EXPECT_TRUE(rig.vos.dirty_pages_since(rig.pid, e).has_value());

  // A clone restored as a *new* process must not honor the donor's epoch.
  int np = image::restore_new(rig.vos, img);
  EXPECT_NE(np, rig.pid);
  EXPECT_FALSE(rig.vos.dirty_pages_since(np, e).has_value());

  // A full rebuild of the original discards its dirty history too.
  image::restore(rig.vos, {.pid = rig.pid,
                           .img = &img,
                           .mode = image::RestoreMode::kFull});
  EXPECT_FALSE(rig.vos.dirty_pages_since(rig.pid, e).has_value());
}

// ---------------------------------------------------------------------------
// The incremental engine (DynaCut baselines)
// ---------------------------------------------------------------------------

TEST(Incremental, FirstDumpFullSecondDumpSharesEverything) {
  Rig rig(mut_guest);
  DynaCut dc(rig.vos, rig.pid, {}, CheckMode::kOff);
  ASSERT_EQ(dc.ckpt_mode(), CkptMode::kIncremental);

  CustomizeReport rep1 = dc.disable_feature(
      {mut_spec(), RemovalPolicy::kBlockFirstByte, TrapPolicy::kTerminate});
  // No baseline yet: the first dump captures the whole image.
  EXPECT_EQ(rep1.edits.pages_dumped, rep1.edits.image_pages);
  EXPECT_EQ(rep1.edits.pages_shared, 0u);

  // Toggle straight back without letting the guest run: nothing is dirty,
  // so the dump shares every page from the baseline in O(1). kBlockFirstByte
  // + kTerminate injects no handler library, so the restore writes back
  // exactly the pages the rewriter touched — the freeze-window bound.
  CustomizeReport rep2 = dc.restore_feature("feat");
  EXPECT_EQ(rep2.edits.pages_dumped, 0u);
  EXPECT_EQ(rep2.edits.pages_shared, rep2.edits.image_pages);
  EXPECT_GT(rep2.edits.pages_touched, 0u);
  EXPECT_LE(rep2.edits.pages_restored, rep2.edits.pages_touched);
  EXPECT_FALSE(dc.feature_disabled("feat"));
}

TEST(Incremental, GuestWritesBoundTheSecondDump) {
  Rig rig(mut_guest);
  DynaCut dc(rig.vos, rig.pid, {}, CheckMode::kOff);

  dc.disable_feature(
      {mut_spec(), RemovalPolicy::kBlockFirstByte, TrapPolicy::kTerminate});
  rig.vos.run(4000);

  CustomizeReport rep = dc.restore_feature("feat");
  // The guest's working set is its two buffer pages (plus at most a stack
  // page); everything else rides the baseline. This is the paper's claim:
  // the dump is bounded by what ran, not by the image.
  EXPECT_GT(rep.edits.pages_dumped, 0u);
  EXPECT_LE(rep.edits.pages_dumped, 3u);
  EXPECT_LT(rep.edits.pages_dumped, rep.edits.image_pages);
  EXPECT_EQ(rep.edits.pages_dumped + rep.edits.pages_shared,
            rep.edits.image_pages);
}

TEST(Incremental, ObservablyIdenticalToFullMode) {
  // Property: a workload driven through incremental checkpointing is
  // bit-identical to the same workload under full dumps + rebuilds. The
  // zeroed cost model keeps the two virtual clocks in lockstep.
  Rig inc(mut_guest);
  Rig full(mut_guest);
  DynaCut dci(inc.vos, inc.pid, zero_costs(), CheckMode::kOff);
  DynaCut dcf(full.vos, full.pid, zero_costs(), CheckMode::kOff);
  dcf.set_ckpt_mode(CkptMode::kFull);

  for (DynaCut* dc : {&dci, &dcf}) {
    dc->disable_feature(
        {mut_spec(), RemovalPolicy::kUnmapPages, TrapPolicy::kRedirect});
  }
  inc.vos.run(2500);
  full.vos.run(2500);
  for (DynaCut* dc : {&dci, &dcf}) dc->restore_feature("feat");
  inc.vos.run(2500);
  full.vos.run(2500);
  for (DynaCut* dc : {&dci, &dcf}) {
    dc->disable_feature(
        {mut_spec(), RemovalPolicy::kWipeBlocks, TrapPolicy::kTerminate});
  }

  EXPECT_EQ(Snap::of(*inc.vos.process(inc.pid)),
            Snap::of(*full.vos.process(full.pid)));
  EXPECT_EQ(image::checkpoint(inc.vos, {.pid = inc.pid}).img.encode(),
            image::checkpoint(full.vos, {.pid = full.pid}).img.encode());
}

TEST(Incremental, RollbackDropsBaselinesAndRetrySucceeds) {
  Rig rig(mut_guest);
  DynaCut dc(rig.vos, rig.pid, {}, CheckMode::kOff);

  dc.disable_feature(
      {mut_spec(), RemovalPolicy::kBlockFirstByte, TrapPolicy::kTerminate});
  rig.vos.run(2000);
  Snap patched = Snap::of(*rig.vos.process(rig.pid));

  // Fail the restore with a warm baseline in play: the rollback must land
  // exactly on the patched pre-call state.
  FaultPlan plan = FaultPlan::fail_at(FaultStage::kRestore, 0);
  dc.set_fault_plan(&plan);
  EXPECT_THROW(dc.restore_feature("feat"), CustomizeError);
  EXPECT_EQ(Snap::of(*rig.vos.process(rig.pid)), patched);
  EXPECT_TRUE(dc.feature_disabled("feat"));

  // The rollback invalidated the baseline, so the retry re-baselines with
  // a full dump — and succeeds.
  dc.set_fault_plan(nullptr);
  CustomizeReport rep = dc.restore_feature("feat");
  EXPECT_EQ(rep.edits.pages_dumped, rep.edits.image_pages);
  EXPECT_FALSE(dc.feature_disabled("feat"));
}

TEST(Incremental, GroupCheckpointUsesPerMemberBaselines) {
  Rig rig(grp_guest);
  std::vector<int> group = rig.vos.process_group(rig.pid);
  ASSERT_EQ(group.size(), 2u);

  // Round 1: full group dump seeds the per-pid baselines.
  std::vector<image::ProcessImage> imgs =
      image::checkpoint_group(rig.vos, rig.pid);
  image::BaselineMap baselines;
  for (const auto& img : imgs) {
    baselines[img.core.pid] =
        image::Baseline{img, rig.vos.mem_epoch(img.core.pid)};
  }
  for (const auto& img : imgs) {
    image::restore(rig.vos, {.pid = img.core.pid, .img = &img});
  }
  rig.vos.run(3000);

  // Round 2: every member dumps incrementally against its own baseline,
  // fires its own checkpoint fault point and emits its own dump event.
  FaultPlan counter;
  obs::EventBus bus;
  obs::RingBufferSink ring;
  bus.add_sink(&ring);
  std::vector<image::CkptStats> stats;
  imgs = image::checkpoint_group(rig.vos, rig.pid, &counter, &bus, &baselines,
                                 &stats);
  ASSERT_EQ(imgs.size(), 2u);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(counter.count(FaultStage::kCheckpoint), 2u);
  EXPECT_EQ(ring.count(obs::ev::kCheckpointDump), 2u);
  for (size_t i = 0; i < stats.size(); ++i) {
    EXPECT_TRUE(stats[i].incremental);
    EXPECT_LT(stats[i].pages_dumped, stats[i].pages_total);
    EXPECT_EQ(stats[i].pages_dumped + stats[i].pages_shared,
              stats[i].pages_total);
    EXPECT_EQ(ring.of_type(obs::ev::kCheckpointDump)[i]->attr_u64(
                  "incremental"),
              1u);
  }
  for (const auto& img : imgs) {
    image::restore(rig.vos, {.pid = img.core.pid, .img = &img});
  }
}

TEST(Incremental, DeltaToggleShrinksTheFreezeWindow) {
  Rig rig(mut_guest);
  CostModel model;  // the calibrated defaults
  DynaCut dc(rig.vos, rig.pid, model, CheckMode::kOff);

  CustomizeReport rep1 = dc.disable_feature(
      {mut_spec(), RemovalPolicy::kBlockFirstByte, TrapPolicy::kTerminate});
  rig.vos.run(2000);
  CustomizeReport rep2 = dc.restore_feature("feat");

  // The first toggle pays the full dump; the warm toggle's whole freeze
  // window (dirty dump + in-place restore) beats just the *checkpoint*
  // side of the cold one by 5x.
  uint64_t cold = rep1.timing.checkpoint_ns;
  uint64_t warm = rep2.timing.checkpoint_ns + rep2.timing.restore_ns;
  EXPECT_GE(cold, 5 * rep2.timing.checkpoint_ns);
  EXPECT_GT(cold, warm);
  EXPECT_LT(rep2.timing.checkpoint_ns, model.checkpoint_base_ns);
  EXPECT_LT(rep2.timing.restore_ns, model.restore_base_ns);
}

}  // namespace
}  // namespace dynacut::core
