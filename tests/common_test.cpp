// Unit tests for src/common: byte I/O, hex formatting, RNG determinism.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/hex.hpp"
#include "common/rng.hpp"

namespace dynacut {
namespace {

TEST(ByteWriter, WritesPrimitivesLittleEndian) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ULL);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 1u + 2 + 4 + 8);
  EXPECT_EQ(b[0], 0xab);
  EXPECT_EQ(b[1], 0x34);
  EXPECT_EQ(b[2], 0x12);
  EXPECT_EQ(b[3], 0xef);
  EXPECT_EQ(b[7], 0x08);  // low byte of the u64
}

TEST(ByteRoundtrip, AllPrimitiveTypes) {
  ByteWriter w;
  w.u8(7);
  w.u16(65535);
  w.u32(4000000000u);
  w.u64(1ull << 63);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.str("hello");
  w.blob(std::vector<uint8_t>{1, 2, 3});

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 4000000000u);
  EXPECT_EQ(r.u64(), 1ull << 63);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.blob(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_TRUE(r.done());
}

TEST(ByteReader, ThrowsOnTruncatedRead) {
  std::vector<uint8_t> data{1, 2};
  ByteReader r(data);
  EXPECT_THROW(r.u32(), DecodeError);
}

TEST(ByteReader, ThrowsOnTruncatedString) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow
  w.u8('x');
  ByteReader r(w.bytes());
  EXPECT_THROW(r.str(), DecodeError);
}

TEST(ByteReader, EmptyStringAndBlob) {
  ByteWriter w;
  w.str("");
  w.blob({});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.blob().empty());
}

TEST(ByteWriter, PatchU32) {
  ByteWriter w;
  w.u32(0);
  w.u8(9);
  w.patch_u32(0, 0xcafebabe);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u32(), 0xcafebabe);
}

TEST(Hex, Addr) { EXPECT_EQ(hex_addr(0x400000), "0x400000"); }

TEST(Hex, Bytes) {
  std::vector<uint8_t> b{0xcc, 0x90, 0x01};
  EXPECT_EQ(hex_bytes(b), "cc 90 01");
}

TEST(Hex, ParseU64) {
  EXPECT_EQ(parse_u64("0x10"), 16u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_THROW(parse_u64(""), DecodeError);
  EXPECT_THROW(parse_u64("zz"), DecodeError);
  EXPECT_THROW(parse_u64("12x"), DecodeError);
}

TEST(Hex, DumpHasAddressColumn) {
  std::vector<uint8_t> b(20, 0xaa);
  std::string dump = hexdump(b, 0x1000);
  EXPECT_NE(dump.find("0000000000001000"), std::string::npos);
  EXPECT_NE(dump.find("0000000000001010"), std::string::npos);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = r.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Constants, PageMath) {
  EXPECT_EQ(page_floor(0x1fff), 0x1000u);
  EXPECT_EQ(page_ceil(0x1001), 0x2000u);
  EXPECT_EQ(page_ceil(0x1000), 0x1000u);
  EXPECT_EQ(page_floor(0), 0u);
}

}  // namespace
}  // namespace dynacut
