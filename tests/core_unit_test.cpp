// Unit tests for core building blocks: cost model arithmetic, timing
// breakdowns, and the injected handler libraries' structure (PIC-ness,
// exports, table sizing).
#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/handler_lib.hpp"
#include "isa/disasm.hpp"
#include "os/syscall.hpp"

namespace dynacut::core {
namespace {

TEST(CostModel, TermsAreProportionalToWork) {
  CostModel m;
  EXPECT_EQ(m.checkpoint_cost(0), m.checkpoint_base_ns);
  EXPECT_EQ(m.checkpoint_cost(100) - m.checkpoint_cost(0),
            100 * m.checkpoint_per_page_ns);
  EXPECT_EQ(m.restore_cost(10) - m.restore_cost(0),
            10 * m.restore_per_page_ns);
  EXPECT_EQ(m.patch_cost(5, 0), 5 * m.patch_per_block_ns);
  EXPECT_EQ(m.patch_cost(0, 3), 3 * m.unmap_per_page_ns);
  EXPECT_EQ(m.inject_cost(7) - m.inject_cost(0), 7 * m.inject_per_reloc_ns);
}

TEST(CostModel, ServerScaleFeatureRemovalIsSubSecond) {
  // A 2.3MB image (~560 pages) with a handful of blocks — the Fig. 6 case —
  // must land well under a second with the default coefficients.
  CostModel m;
  uint64_t total = m.checkpoint_cost(560) + m.patch_cost(10, 0) +
                   m.inject_cost(12) + m.restore_cost(560);
  EXPECT_LT(total, 1'000'000'000u);
  EXPECT_GT(total, 100'000'000u);
}

TEST(TimingBreakdown, TotalsAndAccumulation) {
  TimingBreakdown a{1, 2, 3, 4};
  EXPECT_EQ(a.total_ns(), 10u);
  TimingBreakdown b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.checkpoint_ns, 11u);
  EXPECT_EQ(a.total_ns(), 110u);
  TimingBreakdown half_second{500'000'000, 0, 0, 0};
  EXPECT_DOUBLE_EQ(half_second.total_seconds(), 0.5);
}

TEST(HandlerLib, RedirectLibIsPositionIndependent) {
  auto lib = build_redirect_lib(16);
  // PIC requirement: no kAbs64 relocations (only GOT entries would be
  // allowed, and this library imports nothing).
  for (const auto& rel : lib->relocs) {
    EXPECT_NE(rel.kind, melf::RelocKind::kAbs64);
  }
  EXPECT_TRUE(lib->imports.empty());
  EXPECT_EQ(lib->entry, melf::Binary::kNoEntry);
}

TEST(HandlerLib, RedirectLibExportsAndCapacity) {
  auto lib = build_redirect_lib(32);
  for (const char* sym : {"dynacut_handler", "dynacut_restorer",
                          "redirect_count", "redirect_table"}) {
    ASSERT_NE(lib->find_symbol(sym), nullptr) << sym;
  }
  EXPECT_EQ(lib->find_symbol("redirect_table")->size, 32u * 16);
  EXPECT_EQ(lib->find_symbol("redirect_count")->size, 8u);
}

TEST(HandlerLib, RestorerIsSigreturnStub) {
  // The restorer must be the small mov+syscall sigreturn stub (the paper's
  // injected rt_sigreturn restorer).
  auto lib = build_redirect_lib(4);
  const melf::Symbol* restorer = lib->find_symbol("dynacut_restorer");
  ASSERT_NE(restorer, nullptr);
  EXPECT_EQ(restorer->size, 11u);  // mov_ri(10) + syscall(1)
  const melf::Section* text = lib->section(melf::SectionKind::kText);
  auto ins = isa::decode(std::span(text->bytes).subspan(restorer->value));
  EXPECT_EQ(ins.op, isa::Op::kMovRI);
  EXPECT_EQ(static_cast<uint64_t>(ins.imm), os::sys::kSigreturn);
}

TEST(HandlerLib, VerifierLibShape) {
  auto lib = build_verifier_lib(10, 64);
  for (const char* sym :
       {"dynacut_verify_handler", "dynacut_restorer", "orig_count",
        "orig_table", "log_count", "log_cap", "log_buf"}) {
    ASSERT_NE(lib->find_symbol(sym), nullptr) << sym;
  }
  EXPECT_EQ(lib->find_symbol("orig_table")->size, 10u * 16);
  EXPECT_EQ(lib->find_symbol("log_buf")->size, 64u * 8);
  for (const auto& rel : lib->relocs) {
    EXPECT_NE(rel.kind, melf::RelocKind::kAbs64);  // PIC
  }
}

TEST(HandlerLib, CapacityScalesLayout) {
  auto small = build_redirect_lib(1);
  auto big = build_redirect_lib(1024);
  EXPECT_GT(big->image_size(), small->image_size());
}

}  // namespace
}  // namespace dynacut::core
