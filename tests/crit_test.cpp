// Tests for the CRIT-style text codec: decode/encode roundtrips, summary
// views, hand-edited-image workflows and malformed-input rejection.
#include <gtest/gtest.h>

#include "apps/libc.hpp"
#include "image/checkpoint.hpp"
#include "image/crit.hpp"
#include "os/os.hpp"
#include "test_guests.hpp"

namespace dynacut::image {
namespace {

ProcessImage live_image(os::Os& vos, int& pid) {
  pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  vos.run();
  return checkpoint(vos, {.pid = pid}).img;
}

TEST(Crit, TextRoundtripIsLossless) {
  os::Os vos;
  int pid = 0;
  ProcessImage img = live_image(vos, pid);
  std::string text = decode_text(img);
  ProcessImage back = encode_text(text);

  // Binary serialization is the canonical equality check.
  EXPECT_EQ(back.encode(), img.encode());
  restore(vos, {.pid = pid, .img = &img});
}

TEST(Crit, RestoredFromTextImageStillServes) {
  os::Os vos;
  int pid = 0;
  ProcessImage img = live_image(vos, pid);
  ProcessImage back = encode_text(decode_text(img));
  // Text form drops live socket handles; splice them back (TCP repair).
  for (size_t i = 0; i < back.fds.size(); ++i) {
    back.fds[i].live = img.fds[i].live;
  }
  restore(vos, {.pid = pid, .img = &back});
  auto conn = vos.connect(80);
  conn.send("A\nQ\n");
  vos.run();
  EXPECT_EQ(conn.recv_all(), "alpha\n");
  EXPECT_TRUE(vos.all_exited());
}

TEST(Crit, HandEditedRegisterTakesEffect) {
  // The CRIT workflow: decode to text, edit a register, encode, restore.
  namespace sys = os::sys;
  melf::ProgramBuilder b("regdemo");
  auto& f = b.func("main");
  f.mov_ri(12, 1);
  f.label("wait").mov_ri(1, 50).sys(sys::kNanosleep);
  f.cmp_ri(12, 1).je("wait");
  f.mov_rr(1, 12).sys(sys::kExit);  // exits with r12 once it changes
  b.set_entry("main");

  os::Os vos;
  int pid = vos.spawn(std::make_shared<melf::Binary>(b.link()));
  vos.run(5000);
  ProcessImage img = checkpoint(vos, {.pid = pid}).img;
  std::string text = decode_text(img);

  size_t at = text.find("reg 12 0x1\n");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 11, "reg 12 0x2a\n");

  ProcessImage edited = encode_text(text);
  restore(vos, {.pid = pid, .img = &edited});
  vos.run();
  ASSERT_TRUE(vos.all_exited());
  EXPECT_EQ(vos.process(pid)->exit_code, 42);
}

TEST(Crit, ShowMemsListsEveryVma) {
  os::Os vos;
  int pid = 0;
  ProcessImage img = live_image(vos, pid);
  std::string mems = show_mems(img);
  for (const auto& v : img.vmas) {
    EXPECT_NE(mems.find("name=" + v.name), std::string::npos) << v.name;
  }
  EXPECT_NE(mems.find("[stack]"), std::string::npos);
  EXPECT_NE(mems.find("toysrv:.text"), std::string::npos);
  restore(vos, {.pid = pid, .img = &img});
}

TEST(Crit, ShowCoreIncludesRegistersAndSigactions) {
  ProcessImage img;
  img.core.proc_name = "demo";
  img.core.pid = 7;
  img.core.cpu.ip = 0x401000;
  img.core.cpu.regs[3] = 0xabc;
  img.core.sigactions[os::sig::kSigTrap] = os::SigAction{0x5000, 0x5100};
  std::string core = show_core(img);
  EXPECT_NE(core.find("name=demo pid=7"), std::string::npos);
  EXPECT_NE(core.find("ip 0x401000"), std::string::npos);
  EXPECT_NE(core.find("reg 3 0xabc"), std::string::npos);
  EXPECT_NE(core.find("sigaction 5 handler=0x5000 restorer=0x5100"),
            std::string::npos);
}

TEST(Crit, SummaryViewOmitsPagePayloads) {
  os::Os vos;
  int pid = 0;
  ProcessImage img = live_image(vos, pid);
  std::string full = decode_text(img, /*include_pages=*/true);
  std::string summary = decode_text(img, /*include_pages=*/false);
  EXPECT_LT(summary.size(), full.size() / 4);
  EXPECT_NE(summary.find("<4096 bytes>"), std::string::npos);
  restore(vos, {.pid = pid, .img = &img});
}

TEST(Crit, RejectsMalformedInput) {
  EXPECT_THROW(encode_text(""), DecodeError);
  EXPECT_THROW(encode_text("not an image\n"), DecodeError);
  EXPECT_THROW(encode_text("crsim-image v1\n"), DecodeError);  // no end
  EXPECT_THROW(encode_text("crsim-image v1\nbogus record\nend\n"),
               DecodeError);
  EXPECT_THROW(encode_text("crsim-image v1\nreg 99 0x1\nend\n"),
               DecodeError);
  EXPECT_THROW(encode_text("crsim-image v1\npage 0x1000 abcd\nend\n"),
               DecodeError);  // not a full page
  EXPECT_THROW(encode_text("crsim-image v1\nsigaction 99 handler=0x1 "
                           "restorer=0x2\nend\n"),
               DecodeError);
}

TEST(Crit, EmptyImageRoundtrips) {
  ProcessImage img;
  img.core.proc_name = "empty";
  ProcessImage back = encode_text(decode_text(img));
  EXPECT_EQ(back.encode(), img.encode());
}

}  // namespace
}  // namespace dynacut::image
