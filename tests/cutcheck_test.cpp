// Tests for the cutcheck static cut-plan verifier: the plan model (ByteSet,
// page accounting), the CFG extensions it builds on (instruction starts,
// dominators, call graph), each of the six rules, plan extraction, and the
// DynaCut enforce/warn/off integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/cutcheck/checker.hpp"
#include "apps/libc.hpp"
#include "common/error.hpp"
#include "core/dynacut.hpp"
#include "isa/encode.hpp"
#include "melf/builder.hpp"
#include "os/os.hpp"
#include "rewriter/rewriter.hpp"
#include "test_guests.hpp"

namespace dynacut::analysis::cutcheck {
namespace {

using melf::Binary;
using melf::ProgramBuilder;

// --- helpers -------------------------------------------------------------

CutPlan make_plan(std::shared_ptr<const melf::Binary> bin,
                  std::vector<CovBlock> blocks, Removal removal, Trap trap) {
  CutPlan p;
  p.feature = "test";
  p.module = bin->name;
  p.binary = std::move(bin);
  p.blocks = std::move(blocks);
  p.removal = removal;
  p.trap = trap;
  return p;
}

size_t rule_count(const CheckReport& r, const char* rule, Severity sev) {
  size_t n = 0;
  for (const Diagnostic* d : r.by_rule(rule)) {
    if (d->severity == sev) ++n;
  }
  return n;
}

bool rule_mentions(const CheckReport& r, const char* rule,
                   const std::string& text) {
  for (const Diagnostic* d : r.by_rule(rule)) {
    if (d->message.find(text) != std::string::npos) return true;
  }
  return false;
}

/// A single-.text-section binary from hand-assembled bytes — for layouts
/// the ProgramBuilder cannot express (overlapping decodings, fallthrough
/// off the section end).
Binary raw_binary(std::vector<uint8_t> text,
                  std::vector<melf::Symbol> symbols) {
  Binary bin;
  bin.name = "hand";
  melf::Section sec;
  sec.kind = melf::SectionKind::kText;
  sec.offset = 0;
  sec.size = text.size();
  sec.bytes = std::move(text);
  bin.sections.push_back(std::move(sec));
  bin.symbols = std::move(symbols);
  return bin;
}

melf::Symbol func_symbol(const std::string& name, uint64_t value,
                         uint64_t size) {
  melf::Symbol s;
  s.name = name;
  s.value = value;
  s.size = size;
  s.global = true;
  s.is_function = true;
  return s;
}

// --- ByteSet -------------------------------------------------------------

TEST(ByteSetTest, AddMergesOverlapsAndNeighbours) {
  ByteSet s;
  s.add(10, 20);
  s.add(30, 40);
  s.add(18, 30);  // bridges both
  EXPECT_TRUE(s.covers(10, 40));
  EXPECT_FALSE(s.contains(9));
  EXPECT_TRUE(s.contains(10));
  EXPECT_TRUE(s.contains(39));
  EXPECT_FALSE(s.contains(40));
}

TEST(ByteSetTest, DuplicateAddsDoNotGrowCoverage) {
  ByteSet s;
  s.add(0, 100);
  s.add(0, 100);
  EXPECT_TRUE(s.covers(0, 100));
  EXPECT_FALSE(s.covers(0, 101));
}

TEST(ByteSetTest, GapsReportsUncoveredIntervalsInOrder) {
  ByteSet s;
  s.add(10, 20);
  s.add(30, 40);
  auto gaps = s.gaps(0, 50);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], std::make_pair(uint64_t{0}, uint64_t{10}));
  EXPECT_EQ(gaps[1], std::make_pair(uint64_t{20}, uint64_t{30}));
  EXPECT_EQ(gaps[2], std::make_pair(uint64_t{40}, uint64_t{50}));
}

TEST(ByteSetTest, GapsOfFullyCoveredWindowIsEmpty) {
  ByteSet s;
  s.add(0, 4096);
  EXPECT_TRUE(s.gaps(512, 1024).empty());
  EXPECT_TRUE(s.gaps(0, 4096).empty());
}

TEST(ByteSetTest, GapsStartingInsideAnInterval) {
  ByteSet s;
  s.add(0, 100);
  auto gaps = s.gaps(50, 200);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], std::make_pair(uint64_t{100}, uint64_t{200}));
}

TEST(ByteSetTest, EmptySetGapIsWholeWindow) {
  ByteSet s;
  auto gaps = s.gaps(5, 10);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], std::make_pair(uint64_t{5}, uint64_t{10}));
}

// --- page accounting -----------------------------------------------------

TEST(PageAccountingTest, DisjointRangesMustReallyFillThePage) {
  CutPlan p;
  p.blocks = {{"m", 0, 2048}, {"m", 2048, 2048}};
  auto pages = accounted_full_pages(p);
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_EQ(pages[0], 0u);
}

TEST(PageAccountingTest, DuplicateRangesDoubleCountLikeTheRewriter) {
  // Two copies of a half-page range sum to a full page in the rewriter's
  // per-range arithmetic even though only half the page is covered — the
  // exact bug class CC005 exists to catch.
  CutPlan p;
  p.blocks = {{"m", 0, 2048}, {"m", 0, 2048}};
  auto pages = accounted_full_pages(p);
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_EQ(pages[0], 0u);
}

TEST(PageAccountingTest, PartialPageIsNotDropped) {
  CutPlan p;
  p.blocks = {{"m", 0, 4095}};
  EXPECT_TRUE(accounted_full_pages(p).empty());
}

// --- CFG extensions ------------------------------------------------------

TEST(CfgExtensionsTest, JumpIntoImmediateYieldsOverlappingDecodings) {
  // 0:  je +2        -> target 7, fallthrough 5
  // 5:  mov r1, 0x1E90   (imm bytes at 7..14: nop, ret, zeros)
  // 15: ret
  // Offset 7 decodes as nop/ret *inside* the mov's immediate: two blocks
  // whose byte ranges overlap.
  std::vector<uint8_t> code;
  isa::Encoder enc(code);
  enc.branch(isa::Op::kJe, 2);
  enc.mov_ri(1, 0x1E90);
  enc.ret();
  Binary bin = raw_binary(code, {func_symbol("f", 0, code.size())});

  StaticCfg cfg = recover_cfg(bin);
  EXPECT_TRUE(cfg.is_instr_start(0));
  EXPECT_TRUE(cfg.is_instr_start(5));
  EXPECT_TRUE(cfg.is_instr_start(7));
  EXPECT_TRUE(cfg.is_instr_start(8));
  EXPECT_FALSE(cfg.is_instr_start(6));

  const CfgBlock* outer = cfg.block_at(5);
  const CfgBlock* inner = cfg.block_at(7);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->size, 11u);  // mov + ret
  EXPECT_EQ(inner->size, 2u);   // nop + ret
  // block_containing favours the latest-starting block covering the offset.
  EXPECT_EQ(cfg.block_containing(8), inner);
}

TEST(CfgExtensionsTest, FallthroughAtTextEndTerminatesBlock) {
  std::vector<uint8_t> code;
  isa::Encoder enc(code);
  enc.mov_ri(1, 5);
  enc.add_ri(1, 1);  // no terminator; code simply ends
  Binary bin = raw_binary(code, {func_symbol("f", 0, code.size())});

  StaticCfg cfg = recover_cfg(bin);
  ASSERT_EQ(cfg.block_count(), 1u);
  const CfgBlock& blk = cfg.blocks.begin()->second;
  EXPECT_EQ(blk.size, code.size());
  EXPECT_EQ(blk.term, isa::Op::kNop);  // ended by running out of code
  EXPECT_TRUE(blk.succs.empty());
}

TEST(CfgExtensionsTest, DominatorTreeOfDiamond) {
  ProgramBuilder b("diamond");
  auto& f = b.func("f");
  f.cmp_ri(1, 0)
      .je("right")
      .mov_ri(2, 1)
      .jmp("join")
      .label("right")
      .mov_ri(2, 2)
      .label("join")
      .ret();
  Binary bin = b.link();
  StaticCfg cfg = recover_cfg(bin);
  auto funcs = split_functions(cfg, bin);
  ASSERT_EQ(funcs.size(), 1u);
  const FuncCfg& fc = funcs.begin()->second;
  auto idom = dominator_tree(fc);
  ASSERT_EQ(idom.size(), 4u);
  // Both arms and the join are immediately dominated by the branch block
  // (the entry maps to itself).
  uint64_t entry = fc.entry;
  for (uint64_t blk : fc.blocks) {
    EXPECT_EQ(idom.at(blk), entry) << "block " << blk;
  }
}

TEST(CfgExtensionsTest, DominatorTreeOfChainFollowsTheChain) {
  ProgramBuilder b("chain");
  auto& f = b.func("f");
  f.cmp_ri(1, 0).je("b2");  // E -> {b2, A}
  f.label("a1").mov_ri(2, 1).jmp("c1");
  f.label("c1").mov_ri(2, 3).jmp("d1");
  f.label("b2").mov_ri(2, 2);
  f.label("d1").ret();
  Binary bin = b.link();
  StaticCfg cfg = recover_cfg(bin);
  auto funcs = split_functions(cfg, bin);
  const FuncCfg& fc = funcs.begin()->second;
  auto idom = dominator_tree(fc);

  uint64_t entry = fc.entry;
  uint64_t a1 = 11;       // after cmp(6)+je(5)
  uint64_t c1 = a1 + 15;  // mov(10)+jmp(5)
  uint64_t b2 = c1 + 15;
  uint64_t d1 = b2 + 10;
  ASSERT_TRUE(fc.blocks.count(a1) && fc.blocks.count(c1) &&
              fc.blocks.count(b2) && fc.blocks.count(d1));
  EXPECT_EQ(idom.at(a1), entry);
  EXPECT_EQ(idom.at(c1), a1);   // only reachable through a1
  EXPECT_EQ(idom.at(b2), entry);
  EXPECT_EQ(idom.at(d1), entry);  // join of two paths
}

TEST(CfgExtensionsTest, PredecessorsInvertSuccessors) {
  ProgramBuilder b("p");
  auto& f = b.func("f");
  f.cmp_ri(1, 0).je("x").mov_ri(2, 1).label("x").ret();
  Binary bin = b.link();
  StaticCfg cfg = recover_cfg(bin);
  auto preds = predecessors(cfg);
  for (const auto& [off, blk] : cfg.blocks) {
    for (uint64_t t : blk.succs) {
      if (cfg.blocks.count(t) == 0) continue;
      const auto& pv = preds.at(t);
      EXPECT_NE(std::find(pv.begin(), pv.end(), off), pv.end());
    }
  }
}

TEST(CfgExtensionsTest, CallSitesIndexCalleesByCallingBlocks) {
  auto bin = dynacut::testing::build_toysrv();
  StaticCfg cfg = recover_cfg(*bin);
  auto sites = call_sites(cfg, *bin);
  const melf::Symbol* ha = bin->find_symbol("handle_a");
  ASSERT_NE(ha, nullptr);
  ASSERT_TRUE(sites.count(ha->value));
  // handle_a is called exactly once, from dispatch's arm_a block.
  ASSERT_EQ(sites.at(ha->value).size(), 1u);
  const melf::Symbol* owner =
      bin->symbol_containing(sites.at(ha->value)[0]);
  ASSERT_NE(owner, nullptr);
  EXPECT_EQ(owner->name, "dispatch");
}

TEST(CfgExtensionsTest, SplitFunctionsKeepsEdgesIntraprocedural) {
  auto bin = dynacut::testing::build_toysrv();
  StaticCfg cfg = recover_cfg(*bin);
  auto funcs = split_functions(cfg, *bin);
  for (const auto& [entry, fc] : funcs) {
    for (const auto& [from, succs] : fc.succs) {
      for (uint64_t t : succs) {
        EXPECT_TRUE(fc.blocks.count(t))
            << "edge " << from << "->" << t << " leaves function " << entry;
      }
    }
  }
}

// --- CC001 boundary ------------------------------------------------------

TEST(RuleBoundaryTest, MidInstructionStartIsError) {
  auto bin = dynacut::testing::build_toysrv();
  uint64_t d = bin->find_symbol("dispatch")->value;
  auto r = check_plan(make_plan(bin, {{"toysrv", d + 1, 1}},
                                Removal::kBlockFirstByte, Trap::kTerminate));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(rule_count(r, kRuleBoundary, Severity::kError), 1u);
}

TEST(RuleBoundaryTest, StartOutsideExecutableSectionsIsError) {
  auto bin = dynacut::testing::build_toysrv();
  auto r = check_plan(make_plan(bin, {{"toysrv", 0x100000, 4}},
                                Removal::kBlockFirstByte, Trap::kTerminate));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(rule_mentions(r, kRuleBoundary, "outside every executable"));
}

TEST(RuleBoundaryTest, UnreachableCodeStartIsOnlyWarning) {
  // ret at 0, then two nops no symbol/branch reaches.
  std::vector<uint8_t> code;
  isa::Encoder enc(code);
  enc.ret();
  enc.nop();
  enc.nop();
  auto bin = std::make_shared<Binary>(
      raw_binary(code, {func_symbol("f", 0, 1)}));
  auto r = check_plan(make_plan(bin, {{"hand", 1, 1}},
                                Removal::kBlockFirstByte, Trap::kTerminate));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(rule_count(r, kRuleBoundary, Severity::kWarning), 1u);
}

TEST(RuleBoundaryTest, WipeEndTearingAnInstructionIsError) {
  auto bin = dynacut::testing::build_toysrv();
  uint64_t d = bin->find_symbol("dispatch")->value;
  // dispatch starts with two 10-byte movs; end at +12 tears the second.
  auto r = check_plan(make_plan(bin, {{"toysrv", d, 12}},
                                Removal::kWipeBlocks, Trap::kTerminate));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(rule_mentions(r, kRuleBoundary, "mid-instruction"));
  // The same range under first-byte removal only patches the first byte —
  // no boundary finding at all.
  auto r2 = check_plan(make_plan(bin, {{"toysrv", d, 12}},
                                 Removal::kBlockFirstByte, Trap::kTerminate));
  EXPECT_TRUE(r2.by_rule(kRuleBoundary).empty());
}

TEST(RuleBoundaryTest, RangePastCodeEndIsWarningNotError) {
  auto bin = dynacut::testing::build_toysrv();
  uint64_t d = bin->find_symbol("dispatch")->value;
  auto r = check_plan(make_plan(bin, {{"toysrv", d, 8192}},
                                Removal::kWipeBlocks, Trap::kTerminate));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(rule_count(r, kRuleBoundary, Severity::kWarning), 1u);
}

// --- CC002 stray edges ---------------------------------------------------

std::shared_ptr<const Binary> build_stray_guest(uint64_t* cut_start,
                                                uint64_t* cut_mid,
                                                uint64_t* cut_end) {
  ProgramBuilder b("stray");
  auto& f = b.func("f");
  f.cmp_ri(1, 0).je("mid");                          // entry block, live
  f.label("cut").mark("cut_start").mov_ri(2, 1).nop();
  f.label("mid").mark("cut_mid").mov_ri(2, 2).ret();
  auto bin = std::make_shared<Binary>(b.link());
  *cut_start = bin->find_symbol("cut_start")->value;
  *cut_mid = bin->find_symbol("cut_mid")->value;
  *cut_end = *cut_mid + 11;  // mov(10) + ret(1)
  return bin;
}

TEST(RuleStrayEdgeTest, LiveEdgeIntoWipedInteriorIsErrorUnderRedirectish) {
  uint64_t cs = 0, cm = 0, ce = 0;
  auto bin = build_stray_guest(&cs, &cm, &ce);
  // One range spanning both blocks: the je edge lands at cut_mid, which is
  // inside the range but not a range start.
  auto r = check_plan(
      make_plan(bin, {{"stray", cs, static_cast<uint32_t>(ce - cs)}},
                Removal::kWipeBlocks, Trap::kVerify));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(rule_count(r, kRuleStrayEdge, Severity::kError), 1u);
}

TEST(RuleStrayEdgeTest, SameStrayEdgeUnderTerminateIsWarning) {
  uint64_t cs = 0, cm = 0, ce = 0;
  auto bin = build_stray_guest(&cs, &cm, &ce);
  auto r = check_plan(
      make_plan(bin, {{"stray", cs, static_cast<uint32_t>(ce - cs)}},
                Removal::kWipeBlocks, Trap::kTerminate));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(rule_count(r, kRuleStrayEdge, Severity::kWarning), 1u);
}

TEST(RuleStrayEdgeTest, EdgesOntoRangeStartsAreFine) {
  uint64_t cs = 0, cm = 0, ce = 0;
  auto bin = build_stray_guest(&cs, &cm, &ce);
  // Per-block ranges: every inbound edge lands on a range start.
  auto r = check_plan(
      make_plan(bin,
                {{"stray", cs, static_cast<uint32_t>(cm - cs)},
                 {"stray", cm, static_cast<uint32_t>(ce - cm)}},
                Removal::kWipeBlocks, Trap::kVerify));
  EXPECT_TRUE(r.by_rule(kRuleStrayEdge).empty());
  EXPECT_TRUE(r.ok());
}

TEST(RuleStrayEdgeTest, FirstByteRemovalSkipsTheRule) {
  uint64_t cs = 0, cm = 0, ce = 0;
  auto bin = build_stray_guest(&cs, &cm, &ce);
  auto r = check_plan(
      make_plan(bin, {{"stray", cs, static_cast<uint32_t>(ce - cs)}},
                Removal::kBlockFirstByte, Trap::kVerify));
  EXPECT_TRUE(r.by_rule(kRuleStrayEdge).empty());
}

// --- CC003 redirect ------------------------------------------------------

CutPlan redirect_plan(std::shared_ptr<const Binary> bin,
                      std::vector<CovBlock> blocks, uint64_t target) {
  CutPlan p = make_plan(std::move(bin), std::move(blocks),
                        Removal::kBlockFirstByte, Trap::kRedirect);
  p.has_redirect = true;
  p.redirect_offset = target;
  return p;
}

TEST(RuleRedirectTest, TargetMidInstructionIsError) {
  auto bin = dynacut::testing::build_toysrv();
  uint64_t err = bin->find_symbol("dispatch_err")->value;
  uint64_t d = bin->find_symbol("dispatch")->value;
  auto r = check_plan(redirect_plan(bin, {{"toysrv", d, 1}}, err + 1));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(rule_mentions(r, kRuleRedirect, "instruction start"));
}

TEST(RuleRedirectTest, TargetOutsideAnyFunctionIsError) {
  // 0: jmp +1 -> 6;  5: nop (dead);  6: ret.  Symbol f only covers [0, 5),
  // so offset 6 is a reachable instruction start outside every function.
  std::vector<uint8_t> code;
  isa::Encoder enc(code);
  enc.branch(isa::Op::kJmp, 1);
  enc.nop();
  enc.ret();
  auto bin =
      std::make_shared<Binary>(raw_binary(code, {func_symbol("f", 0, 5)}));
  auto r = check_plan(redirect_plan(bin, {{"hand", 0, 1}}, 6));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(rule_mentions(r, kRuleRedirect, "outside every function"));
}

TEST(RuleRedirectTest, PltStubTargetIsCrossFunctionError) {
  // PLT stubs carry their own @plt function symbols; redirecting into one
  // is rejected by the same-function restriction, not the no-symbol check.
  auto bin = dynacut::testing::build_toysrv();
  uint64_t stub = *bin->plt_stub_offset("write_str");
  uint64_t d = bin->find_symbol("dispatch")->value;
  auto r = check_plan(redirect_plan(bin, {{"toysrv", d, 1}}, stub));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(rule_mentions(r, kRuleRedirect, "no removed block"));
}

TEST(RuleRedirectTest, CrossFunctionRedirectIsError) {
  auto bin = dynacut::testing::build_toysrv();
  uint64_t err = bin->find_symbol("dispatch_err")->value;
  uint64_t ha = bin->find_symbol("handle_a")->value;
  auto r = check_plan(redirect_plan(bin, {{"toysrv", ha, 1}}, err));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(rule_mentions(r, kRuleRedirect, "no removed block"));
}

TEST(RuleRedirectTest, SameFunctionRedirectPassesAndNotesOutsiders) {
  auto bin = dynacut::testing::build_toysrv();
  uint64_t err = bin->find_symbol("dispatch_err")->value;
  uint64_t d = bin->find_symbol("dispatch")->value;
  uint64_t ha = bin->find_symbol("handle_a")->value;
  auto r = check_plan(
      redirect_plan(bin, {{"toysrv", d, 1}, {"toysrv", ha, 1}}, err));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(rule_count(r, kRuleRedirect, Severity::kNote), 1u);
}

TEST(RuleRedirectTest, TargetWithNoLivePathToExitWarns) {
  // g: entry -> (ok | cut); ok's only way out runs through fin, which the
  // plan removes: the redirect target can never finish a request.
  ProgramBuilder b("g");
  auto& f = b.func("g");
  f.cmp_ri(1, 0).je("cut");
  f.label("ok").mark("tgt").mov_ri(2, 1).jmp("fin");
  f.label("cut").mov_ri(2, 2);
  f.label("fin").mark("fin").mov_ri(3, 1).ret();
  auto bin = std::make_shared<Binary>(b.link());
  uint64_t tgt = bin->find_symbol("tgt")->value;
  uint64_t fin = bin->find_symbol("fin")->value;
  auto r = check_plan(redirect_plan(bin, {{"g", fin, 1}}, tgt));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(rule_mentions(r, kRuleRedirect, "return or syscall"));
}

// --- CC004 reachability amplification ------------------------------------

TEST(RuleReachAmpTest, DominatedBlocksAreReportedAsFreeRemovals) {
  ProgramBuilder b("amp");
  auto& f = b.func("f");
  f.cmp_ri(1, 0).je("bb");
  f.label("aa").mark("blk_a").mov_ri(2, 1).jmp("cc");
  f.label("cc").mov_ri(2, 3).jmp("dd");
  f.label("bb").mov_ri(2, 2);
  f.label("dd").ret();
  auto bin = std::make_shared<Binary>(b.link());
  uint64_t aa = bin->find_symbol("blk_a")->value;
  auto r = check_plan(make_plan(bin, {{"amp", aa, 1}},
                                Removal::kBlockFirstByte, Trap::kTerminate));
  EXPECT_TRUE(r.ok());
  // cc is only reachable through aa; dd joins two paths and is not flagged.
  EXPECT_TRUE(rule_mentions(r, kRuleReachAmp, "1 live block"));
}

TEST(RuleReachAmpTest, FunctionWithAllCallSitesCutIsReported) {
  auto bin = dynacut::testing::build_toysrv();
  StaticCfg cfg = recover_cfg(*bin);
  auto sites = call_sites(cfg, *bin);
  uint64_t ha = bin->find_symbol("handle_a")->value;
  ASSERT_TRUE(sites.count(ha));
  std::vector<CovBlock> blocks;
  for (uint64_t s : sites.at(ha)) {
    blocks.push_back({"toysrv", s, 1});
  }
  auto r = check_plan(make_plan(bin, std::move(blocks),
                                Removal::kBlockFirstByte, Trap::kTerminate));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(rule_mentions(r, kRuleReachAmp, "handle_a"));
}

// --- CC005 page safety ---------------------------------------------------

std::shared_ptr<const Binary> build_padded_guest() {
  ProgramBuilder b("padded");
  b.func("lead").mov_ri(1, 1).ret();
  auto& f = b.func("filler");
  for (int i = 0; i < 2200; ++i) f.nop();
  f.ret();
  return std::make_shared<Binary>(b.link());
}

TEST(RulePageSafetyTest, DoubleCountedRangesDroppingLiveCodeIsError) {
  auto bin = build_padded_guest();
  uint64_t filler = bin->find_symbol("filler")->value;
  // Two copies of a half-page range: the rewriter's accounting sums them to
  // a full page and unmaps it — lead and the filler tail were never covered.
  auto r = check_plan(make_plan(bin,
                                {{"padded", filler, 2048},
                                 {"padded", filler, 2048}},
                                Removal::kUnmapPages, Trap::kTerminate));
  EXPECT_FALSE(r.ok());
  EXPECT_GE(rule_count(r, kRulePageSafety, Severity::kError), 1u);
  EXPECT_TRUE(rule_mentions(r, kRulePageSafety, "per-range accounting"));
}

TEST(RulePageSafetyTest, UncoveredNonCodeBytesAreOnlyWarnings) {
  auto bin = dynacut::testing::build_toysrv();
  const melf::Section* text = bin->section(melf::SectionKind::kText);
  ASSERT_NE(text, nullptr);
  ASSERT_LT(text->bytes.size(), 2048u);  // all code fits the first half page
  auto r = check_plan(make_plan(bin,
                                {{"toysrv", 0, 2048}, {"toysrv", 0, 2048}},
                                Removal::kUnmapPages, Trap::kTerminate));
  // Page 0 is dropped, its second half was never named — but there is no
  // code there, so nothing is provably broken.
  EXPECT_TRUE(r.ok());
  EXPECT_GE(rule_count(r, kRulePageSafety, Severity::kWarning), 1u);
}

TEST(RulePageSafetyTest, PltStubOnDroppedPageStillCalledIsError) {
  auto bin = dynacut::testing::build_toysrv();
  const melf::Section* plt = bin->section(melf::SectionKind::kPlt);
  ASSERT_NE(plt, nullptr);
  uint64_t off = plt->offset + melf::Binary::kPltStubSize;
  auto r = check_plan(make_plan(bin,
                                {{"toysrv", off, 2048}, {"toysrv", off, 2048}},
                                Removal::kUnmapPages, Trap::kTerminate));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(rule_mentions(r, kRulePageSafety, "PLT stub"));
}

TEST(RulePageSafetyTest, GotSlotOnDroppedPageWithLiveStubIsError) {
  auto bin = dynacut::testing::build_toysrv();
  const melf::Section* got = bin->section(melf::SectionKind::kGot);
  ASSERT_NE(got, nullptr);
  auto r = check_plan(
      make_plan(bin,
                {{"toysrv", got->offset, 2048}, {"toysrv", got->offset, 2048}},
                Removal::kUnmapPages, Trap::kTerminate));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(rule_mentions(r, kRulePageSafety, "GOT slot"));
}

TEST(RulePageSafetyTest, OtherPoliciesSkipTheRule) {
  auto bin = build_padded_guest();
  uint64_t filler = bin->find_symbol("filler")->value;
  auto r = check_plan(make_plan(bin,
                                {{"padded", filler, 2048},
                                 {"padded", filler, 2048}},
                                Removal::kWipeBlocks, Trap::kTerminate));
  EXPECT_TRUE(r.by_rule(kRulePageSafety).empty());
}

// --- CC006 gadget delta --------------------------------------------------

TEST(RuleGadgetTest, WipingRetfulCodeReducesGadgetStarts) {
  auto bin = dynacut::testing::build_toysrv();
  const melf::Symbol* ha = bin->find_symbol("handle_a");
  auto r = check_plan(make_plan(
      bin, {{"toysrv", ha->value, static_cast<uint32_t>(ha->size)}},
      Removal::kWipeBlocks, Trap::kTerminate));
  EXPECT_TRUE(r.ok());
  EXPECT_LT(r.gadget_delta, 0);
  EXPECT_FALSE(r.by_rule(kRuleGadget).empty());
}

TEST(RuleGadgetTest, DisabledByOptions) {
  auto bin = dynacut::testing::build_toysrv();
  uint64_t d = bin->find_symbol("dispatch")->value;
  CheckOptions opts;
  opts.gadget_delta = false;
  auto r = check_plan(make_plan(bin, {{"toysrv", d, 1}},
                                Removal::kBlockFirstByte, Trap::kTerminate),
                      opts);
  EXPECT_TRUE(r.by_rule(kRuleGadget).empty());
  EXPECT_EQ(r.gadget_delta, 0);
}

// --- CC013 stub reachability / CC014 stub reversibility ------------------

/// `feat` is a single-block leaf called once from main — the cleanest
/// possible stub cut: one wholly-cut function, one block-terminating
/// callsite.
std::shared_ptr<const Binary> build_stub_rule_guest() {
  ProgramBuilder b("stubg");
  b.func("feat").mov_ri(0, 7).ret();
  b.func("other").mov_ri(0, 8).ret();
  auto& m = b.func("main");
  m.mark("site").call("feat");
  m.mov_ri(0, 0).ret();
  return std::make_shared<Binary>(b.link());
}

CutPlan stub_plan(std::shared_ptr<const Binary> bin, const char* func,
                  Mechanism mech, Removal removal = Removal::kBlockFirstByte) {
  const melf::Symbol* f = bin->find_symbol(func);
  CutPlan p = make_plan(
      bin, {{bin->name, f->value, static_cast<uint32_t>(f->size)}}, removal,
      Trap::kTerminate);
  p.mechanism = mech;
  return p;
}

TEST(RuleStubReachabilityTest, CleanWholeFunctionStubPlanPasses) {
  auto bin = build_stub_rule_guest();
  auto r = check_plan(stub_plan(bin, "feat", Mechanism::kStub));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(rule_count(r, kRuleStubReachability, Severity::kError), 0u);
  EXPECT_TRUE(r.by_rule(kRuleStubReversibility).empty());
}

TEST(RuleStubReachabilityTest, UnmapRemovalWithStubMechanismIsError) {
  auto bin = build_stub_rule_guest();
  auto r =
      check_plan(stub_plan(bin, "feat", Mechanism::kStub, Removal::kUnmapPages));
  EXPECT_GE(rule_count(r, kRuleStubReachability, Severity::kError), 1u);
  EXPECT_TRUE(rule_mentions(r, kRuleStubReachability, "SIGSEGV"));
}

TEST(RuleStubReachabilityTest, ExplicitNonFunctionEntryIsError) {
  auto bin = build_stub_rule_guest();
  CutPlan p = stub_plan(bin, "feat", Mechanism::kStub);
  p.stub_entries = {bin->find_symbol("feat")->value + 1};
  auto r = check_plan(p);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(rule_mentions(r, kRuleStubReachability, "not a function-entry"));
}

TEST(RuleStubReachabilityTest, ExplicitEntryOutsideTheCutIsError) {
  auto bin = build_stub_rule_guest();
  // Cut `other`, pin `feat`: the stub would deny a feature the plan keeps.
  CutPlan p = stub_plan(bin, "other", Mechanism::kStub);
  p.stub_entries = {bin->find_symbol("feat")->value};
  auto r = check_plan(p);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(rule_mentions(r, kRuleStubReachability, "keeps live"));
}

TEST(RuleStubReachabilityTest, PartiallyCutEntryWarnsButPasses) {
  ProgramBuilder b("partial");
  auto& f = b.func("feat2");
  f.cmp_ri(1, 0).je("tail");
  f.mov_ri(2, 1);
  f.label("tail").mov_ri(0, 0).ret();
  auto& m = b.func("main");
  m.call("feat2").ret();
  auto bin = std::make_shared<Binary>(b.link());
  const melf::Symbol* f2 = bin->find_symbol("feat2");
  // Cut only the entry block and pin it: live interior blocks remain.
  analysis::StaticCfg cfg = recover_cfg(*bin);
  auto bit = cfg.blocks.find(f2->value);
  ASSERT_NE(bit, cfg.blocks.end());
  uint64_t first_block_end = bit->first + bit->second.size;
  ASSERT_GT(first_block_end, f2->value);
  CutPlan p = make_plan(
      bin,
      {{"partial", f2->value,
        static_cast<uint32_t>(first_block_end - f2->value)}},
      Removal::kBlockFirstByte, Trap::kTerminate);
  p.mechanism = Mechanism::kStub;
  p.stub_entries = {f2->value};
  auto r = check_plan(p);
  EXPECT_TRUE(r.ok());
  EXPECT_GE(rule_count(r, kRuleStubReachability, Severity::kWarning), 1u);
  EXPECT_TRUE(rule_mentions(r, kRuleStubReachability, "partially cut"));
}

std::shared_ptr<const Binary> build_taken_guest() {
  ProgramBuilder b("takeng");
  b.func("feat").mov_ri(0, 7).ret();
  auto& m = b.func("main");
  m.mov_sym(5, "feat");  // address-taken: kAbs64 reloc into feat
  m.call("feat").ret();
  return std::make_shared<Binary>(b.link());
}

TEST(RuleStubReachabilityTest, AutoDemotesAddressTakenToTrapWithNote) {
  auto bin = build_taken_guest();
  auto r = check_plan(stub_plan(bin, "feat", Mechanism::kAuto));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(rule_count(r, kRuleStubReachability, Severity::kError), 0u);
  EXPECT_TRUE(rule_mentions(r, kRuleStubReachability, "pointer-reachable"));
}

TEST(RuleStubReachabilityTest, PinningAddressTakenEntryUnderAutoIsError) {
  auto bin = build_taken_guest();
  CutPlan p = stub_plan(bin, "feat", Mechanism::kAuto);
  p.stub_entries = {bin->find_symbol("feat")->value};
  auto r = check_plan(p);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(rule_mentions(r, kRuleStubReachability, "contradicting the pin"));
}

TEST(RuleStubReachabilityTest, ForcedStubOnAddressTakenEntryOnlyNotes) {
  auto bin = build_taken_guest();
  auto r = check_plan(stub_plan(bin, "feat", Mechanism::kStub));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(rule_count(r, kRuleStubReachability, Severity::kError), 0u);
  EXPECT_TRUE(rule_mentions(r, kRuleStubReachability, "bypass the stub"));
}

/// main's entry block ends at the call terminator, so `site` sits mid-block
/// when the block's own bytes are in the cut.
std::shared_ptr<const Binary> build_midblock_site_guest(uint64_t* site,
                                                        uint64_t* site_end) {
  ProgramBuilder b("rev");
  b.func("feat").mov_ri(0, 7).ret();
  auto& m = b.func("main");
  m.mov_ri(1, 1);
  m.mark("site").call("feat");
  m.mov_ri(0, 0).ret();
  auto bin = std::make_shared<Binary>(b.link());
  *site = bin->find_symbol("site")->value;
  *site_end = *site + 5;  // kCall is 5 bytes
  return bin;
}

TEST(RuleStubReversibilityTest, WipeOverlappingAnExplicitSiteIsError) {
  uint64_t site = 0, site_end = 0;
  auto bin = build_midblock_site_guest(&site, &site_end);
  const melf::Symbol* feat = bin->find_symbol("feat");
  const melf::Symbol* mn = bin->find_symbol("main");
  // Wipe both feat and main's first block; pin feat so the mid-block
  // callsite is planned as a redirect. The 5 patched bytes then overlap
  // bytes the wipe rewrites — order-dependent pre-images.
  CutPlan p = make_plan(
      bin,
      {{"rev", feat->value, static_cast<uint32_t>(feat->size)},
       {"rev", mn->value, static_cast<uint32_t>(site_end - mn->value)}},
      Removal::kWipeBlocks, Trap::kTerminate);
  p.mechanism = Mechanism::kStub;
  p.stub_entries = {feat->value};
  auto r = check_plan(p);
  EXPECT_FALSE(r.ok());
  EXPECT_GE(rule_count(r, kRuleStubReversibility, Severity::kError), 1u);
  EXPECT_TRUE(rule_mentions(r, kRuleStubReversibility, "order-dependent"));
}

TEST(RuleStubReversibilityTest, DerivedPlanLeavesMidBlockSiteOnTheNet) {
  uint64_t site = 0, site_end = 0;
  auto bin = build_midblock_site_guest(&site, &site_end);
  const melf::Symbol* feat = bin->find_symbol("feat");
  const melf::Symbol* mn = bin->find_symbol("main");
  // Same cut without the pin: plan_stubs leaves the mid-block callsite on
  // the int3 net (CC013 note), so no overlapping patch exists.
  CutPlan p = make_plan(
      bin,
      {{"rev", feat->value, static_cast<uint32_t>(feat->size)},
       {"rev", mn->value, static_cast<uint32_t>(site_end - mn->value)}},
      Removal::kWipeBlocks, Trap::kTerminate);
  p.mechanism = Mechanism::kStub;
  auto r = check_plan(p);
  EXPECT_TRUE(r.by_rule(kRuleStubReversibility).empty());
  EXPECT_TRUE(rule_mentions(r, kRuleStubReachability, "int3 net"));
}

TEST(RuleStubReversibilityTest, TrapMechanismSkipsBothStubRules) {
  uint64_t site = 0, site_end = 0;
  auto bin = build_midblock_site_guest(&site, &site_end);
  const melf::Symbol* feat = bin->find_symbol("feat");
  auto r = check_plan(make_plan(
      bin, {{"rev", feat->value, static_cast<uint32_t>(feat->size)}},
      Removal::kWipeBlocks, Trap::kTerminate));
  EXPECT_TRUE(r.by_rule(kRuleStubReachability).empty());
  EXPECT_TRUE(r.by_rule(kRuleStubReversibility).empty());
}

// --- plan extraction and merged checking ---------------------------------

TEST(ExtractPlansTest, GroupsBlocksPerModuleAndBindsBinaries) {
  auto bin = dynacut::testing::build_toysrv();
  uint64_t d = bin->find_symbol("dispatch")->value;
  uint64_t err = bin->find_symbol("dispatch_err")->value;
  std::vector<rw::ModuleRef> mods = {{"toysrv", bin}};
  std::vector<CovBlock> blocks = {{"toysrv", d, 1}, {"ghost", 0x10, 1}};
  auto plans = rw::extract_plans(mods, "feat", blocks, Removal::kWipeBlocks,
                                 Trap::kRedirect, "toysrv", err);
  ASSERT_EQ(plans.size(), 2u);
  const CutPlan* toysrv = nullptr;
  const CutPlan* ghost = nullptr;
  for (const auto& p : plans) {
    if (p.module == "toysrv") toysrv = &p;
    if (p.module == "ghost") ghost = &p;
  }
  ASSERT_NE(toysrv, nullptr);
  ASSERT_NE(ghost, nullptr);
  EXPECT_EQ(toysrv->binary, bin);
  EXPECT_TRUE(toysrv->has_redirect);
  EXPECT_EQ(toysrv->redirect_offset, err);
  EXPECT_EQ(ghost->binary, nullptr);
  EXPECT_FALSE(ghost->has_redirect);
}

TEST(ExtractPlansTest, RedirectModuleGetsAPlanEvenWithoutBlocks) {
  auto bin = dynacut::testing::build_toysrv();
  std::vector<rw::ModuleRef> mods = {{"toysrv", bin}};
  auto plans =
      rw::extract_plans(mods, "feat", {}, Removal::kBlockFirstByte,
                        Trap::kRedirect, "toysrv", 0x20);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_TRUE(plans[0].has_redirect);
  EXPECT_TRUE(plans[0].blocks.empty());
}

TEST(CheckPlansTest, UnloadedModuleWarnsAndUnloadedRedirectErrors) {
  CutPlan missing;
  missing.feature = "f";
  missing.module = "ghost";
  missing.blocks = {{"ghost", 0, 1}};
  auto r1 = check_plan(missing);
  EXPECT_TRUE(r1.ok());
  EXPECT_EQ(r1.warnings(), 1u);

  missing.trap = Trap::kRedirect;
  missing.has_redirect = true;
  auto r2 = check_plan(missing);
  EXPECT_FALSE(r2.ok());
  EXPECT_FALSE(r2.by_rule(kRuleRedirect).empty());
}

TEST(CheckPlansTest, MergeSumsFindingsAndGadgetDelta) {
  auto bin = dynacut::testing::build_toysrv();
  const melf::Symbol* ha = bin->find_symbol("handle_a");
  const melf::Symbol* hb = bin->find_symbol("handle_b");
  std::vector<CutPlan> plans = {
      make_plan(bin, {{"toysrv", ha->value, (uint32_t)ha->size}},
                Removal::kWipeBlocks, Trap::kTerminate),
      make_plan(bin, {{"toysrv", hb->value, (uint32_t)hb->size}},
                Removal::kWipeBlocks, Trap::kTerminate)};
  auto merged = check_plans(plans);
  auto r1 = check_plan(plans[0]);
  auto r2 = check_plan(plans[1]);
  EXPECT_EQ(merged.diags.size(), r1.diags.size() + r2.diags.size());
  EXPECT_EQ(merged.gadget_delta, r1.gadget_delta + r2.gadget_delta);
}

// --- DynaCut integration -------------------------------------------------

struct BootedToysrv {
  os::Os vos;
  int pid = 0;
  std::shared_ptr<const melf::Binary> bin;

  BootedToysrv() {
    bin = dynacut::testing::build_toysrv();
    pid = vos.spawn(bin, {apps::build_libc()});
    vos.run();
  }
};

TEST(DynaCutEnforceTest, RejectsMidInstructionPlan) {
  BootedToysrv t;
  core::DynaCut dc(t.vos, t.pid);
  core::FeatureSpec spec;
  spec.name = "skewed";
  spec.blocks = {{"toysrv", t.bin->find_symbol("dispatch")->value + 1, 1}};
  EXPECT_THROW(dc.disable_feature({spec, core::RemovalPolicy::kBlockFirstByte,
                                  core::TrapPolicy::kTerminate}),
               StateError);
  EXPECT_FALSE(dc.feature_disabled("skewed"));
}

TEST(DynaCutEnforceTest, RejectsDoubleCountedUnmapPlan) {
  BootedToysrv t;
  core::DynaCut dc(t.vos, t.pid);
  uint64_t d = t.bin->find_symbol("dispatch")->value;
  core::FeatureSpec spec;
  spec.name = "doubled";
  spec.blocks = {{"toysrv", d, 2048}, {"toysrv", d, 2048}};
  try {
    dc.disable_feature({spec, core::RemovalPolicy::kUnmapPages,
                       core::TrapPolicy::kTerminate});
    FAIL() << "plan should have been rejected";
  } catch (const StateError& e) {
    EXPECT_NE(std::string(e.what()).find(kRulePageSafety),
              std::string::npos);
  }
  EXPECT_FALSE(dc.feature_disabled("doubled"));
}

TEST(DynaCutEnforceTest, RejectsCrossFunctionRedirect) {
  BootedToysrv t;
  core::DynaCut dc(t.vos, t.pid);
  core::FeatureSpec spec;
  spec.name = "cross";
  spec.blocks = {{"toysrv", t.bin->find_symbol("handle_a")->value, 1}};
  spec.redirect_module = "toysrv";
  spec.redirect_offset = t.bin->find_symbol("dispatch_err")->value;
  try {
    dc.disable_feature({spec, core::RemovalPolicy::kBlockFirstByte,
                       core::TrapPolicy::kRedirect});
    FAIL() << "plan should have been rejected";
  } catch (const StateError& e) {
    EXPECT_NE(std::string(e.what()).find(kRuleRedirect), std::string::npos);
  }
}

TEST(DynaCutCheckModeTest, WarnModeAppliesRejectablePlans) {
  BootedToysrv t;
  core::DynaCut dc(t.vos, t.pid);
  dc.set_check_mode(core::CheckMode::kWarn);
  EXPECT_EQ(dc.check_mode(), core::CheckMode::kWarn);
  core::FeatureSpec spec;
  spec.name = "skewed";
  spec.blocks = {{"toysrv", t.bin->find_symbol("dispatch")->value + 1, 1}};
  dc.disable_feature({spec, core::RemovalPolicy::kBlockFirstByte,
                     core::TrapPolicy::kTerminate});
  EXPECT_TRUE(dc.feature_disabled("skewed"));
  dc.restore_feature("skewed");
}

TEST(DynaCutCheckModeTest, OffModeSkipsVerification) {
  BootedToysrv t;
  core::DynaCut dc(t.vos, t.pid, {}, core::CheckMode::kOff);
  core::FeatureSpec spec;
  spec.name = "skewed";
  spec.blocks = {{"toysrv", t.bin->find_symbol("dispatch")->value + 1, 1}};
  dc.disable_feature({spec, core::RemovalPolicy::kBlockFirstByte,
                     core::TrapPolicy::kTerminate});
  EXPECT_TRUE(dc.feature_disabled("skewed"));
  dc.restore_feature("skewed");
}

TEST(DynaCutCheckModeTest, PreflightReportsWithoutTouchingTheProcess) {
  BootedToysrv t;
  core::DynaCut dc(t.vos, t.pid);
  StaticCfg cfg = recover_cfg(*t.bin);
  auto sites = call_sites(cfg, *t.bin);
  uint64_t ha = t.bin->find_symbol("handle_a")->value;
  core::FeatureSpec spec;
  spec.name = "armA";
  for (uint64_t s : sites.at(ha)) spec.blocks.push_back({"toysrv", s, 1});
  auto report = dc.preflight({spec, core::RemovalPolicy::kBlockFirstByte,
                             core::TrapPolicy::kTerminate});
  EXPECT_TRUE(report.ok());
  EXPECT_GE(report.notes(), 1u);       // reach-amp + gadget notes
  EXPECT_FALSE(dc.feature_disabled("armA"));
}

}  // namespace
}  // namespace dynacut::analysis::cutcheck
