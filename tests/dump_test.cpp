// Tests for the objdump-style MELF renderer.
#include <gtest/gtest.h>

#include "apps/libc.hpp"
#include "apps/minikv.hpp"
#include "melf/dump.hpp"
#include "test_guests.hpp"

namespace dynacut::melf {
namespace {

TEST(Dump, HeadersListSectionsSymbolsImports) {
  auto bin = dynacut::testing::build_toysrv();
  std::string text = dump_headers(*bin);
  EXPECT_NE(text.find("MELF module toysrv"), std::string::npos);
  for (const char* sec : {".text", ".plt", ".rodata", ".data", ".got",
                          ".bss"}) {
    EXPECT_NE(text.find(sec), std::string::npos) << sec;
  }
  for (const char* sym : {"main", "dispatch", "handle_b", "dispatch_err"}) {
    EXPECT_NE(text.find(sym), std::string::npos) << sym;
  }
  EXPECT_NE(text.find("strncmp"), std::string::npos);  // import table
  EXPECT_NE(text.find("Relocations:"), std::string::npos);
}

TEST(Dump, DisasmHasLabelsAndMnemonics) {
  auto bin = dynacut::testing::build_toysrv();
  std::string text = dump_disasm(*bin);
  EXPECT_NE(text.find("<main>:"), std::string::npos);
  EXPECT_NE(text.find("<dispatch>:"), std::string::npos);
  EXPECT_NE(text.find("<dispatch_err>:"), std::string::npos);  // mark symbol
  EXPECT_NE(text.find("syscall"), std::string::npos);
  EXPECT_NE(text.find("call"), std::string::npos);
  EXPECT_NE(text.find("Disassembly of .plt"), std::string::npos);
  EXPECT_NE(text.find("jmpr r11"), std::string::npos);  // PLT stub tail
}

TEST(Dump, LibraryWithoutEntryRendered) {
  std::string text = dump_headers(*apps::build_libc());
  EXPECT_NE(text.find("entry (none)"), std::string::npos);
}

TEST(Dump, AllConcatenatesBothViews) {
  auto bin = apps::build_minikv();
  std::string all = dump_all(*bin);
  EXPECT_NE(all.find("Sections:"), std::string::npos);
  EXPECT_NE(all.find("Disassembly of .text"), std::string::npos);
  EXPECT_GT(all.size(), 10'000u);  // a real listing, not a stub
}

}  // namespace
}  // namespace dynacut::melf
