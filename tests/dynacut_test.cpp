// End-to-end tests of the DynaCut facade: the full trace → diff → disable →
// redirect/verify/restore lifecycle on a live server, including virtual-time
// accounting — the paper's §3 pipeline in miniature.
#include <gtest/gtest.h>

#include "analysis/coverage.hpp"
#include "apps/libc.hpp"
#include "core/dynacut.hpp"
#include "core/handler_lib.hpp"
#include "os/os.hpp"
#include "test_guests.hpp"
#include "trace/trace.hpp"

namespace dynacut::core {
namespace {

using analysis::CoverageGraph;
using analysis::CovBlock;

/// Boots toysrv, runs a wanted-only and an undesired trace pass offline,
/// then exposes the running server plus the discovered feature-B spec.
struct Pipeline {
  os::Os vos;
  int pid = 0;
  std::shared_ptr<const melf::Binary> bin;
  FeatureSpec feature_b;
  os::HostConn conn;

  Pipeline() {
    bin = testing::build_toysrv();

    // Offline profiling runs (separate OS instances, like profiling rigs).
    auto trace_requests = [&](const std::string& reqs) {
      os::Os prof;
      trace::Tracer tracer(prof);
      int p = prof.spawn(testing::build_toysrv(), {apps::build_libc()});
      prof.run();
      auto c = prof.connect(80);
      c.send(reqs);
      prof.run();
      return tracer.dump(p);
    };
    trace::TraceLog undesired = trace_requests("A\nB\nQ\n");
    trace::TraceLog wanted = trace_requests("A\nA\nQ\n");

    feature_b.name = "B";
    feature_b.blocks =
        analysis::feature_diff({undesired}, {wanted}, "toysrv").blocks();
    feature_b.redirect_module = "toysrv";
    feature_b.redirect_offset = bin->find_symbol("dispatch_err")->value;

    // The production instance under customization.
    pid = vos.spawn(bin, {apps::build_libc()});
    vos.run();
    conn = vos.connect(80);
  }

  std::string request(const std::string& line) {
    conn.send(line);
    vos.run();
    return conn.recv_all();
  }
};

TEST(DynaCut, DisableWithRedirectReturnsErrorPath) {
  Pipeline px;
  EXPECT_EQ(px.request("B\n"), "beta\n");  // enabled initially

  DynaCut dc(px.vos, px.pid);
  CustomizeReport rep = dc.disable_feature({
      px.feature_b, RemovalPolicy::kBlockFirstByte, TrapPolicy::kRedirect});
  EXPECT_GT(rep.edits.blocks_patched, 0u);
  EXPECT_EQ(rep.edits.processes, 1u);
  EXPECT_TRUE(dc.feature_disabled("B"));

  // Disabled feature answers through the app's own error path, service
  // stays up (paper Figure 5's 403-Forbidden behaviour).
  EXPECT_EQ(px.request("B\n"), "err\n");
  EXPECT_EQ(px.vos.process(px.pid)->term_signal, 0);
  // Other features unaffected.
  EXPECT_EQ(px.request("A\n"), "alpha\n");
}

TEST(DynaCut, RestoreFeatureReenables) {
  Pipeline px;
  DynaCut dc(px.vos, px.pid);
  dc.disable_feature({px.feature_b, RemovalPolicy::kBlockFirstByte,
                     TrapPolicy::kRedirect});
  EXPECT_EQ(px.request("B\n"), "err\n");

  CustomizeReport rep = dc.restore_feature("B");
  EXPECT_GT(rep.edits.blocks_patched, 0u);
  EXPECT_FALSE(dc.feature_disabled("B"));
  EXPECT_EQ(px.request("B\n"), "beta\n");  // bidirectional customization
  EXPECT_EQ(px.request("A\n"), "alpha\n");
}

TEST(DynaCut, DisableRestoreCycleIsRepeatable) {
  Pipeline px;
  DynaCut dc(px.vos, px.pid);
  for (int round = 0; round < 3; ++round) {
    dc.disable_feature({px.feature_b, RemovalPolicy::kBlockFirstByte,
                       TrapPolicy::kRedirect});
    EXPECT_EQ(px.request("B\n"), "err\n") << "round " << round;
    dc.restore_feature("B");
    EXPECT_EQ(px.request("B\n"), "beta\n") << "round " << round;
  }
}

TEST(DynaCut, WipePolicyAlsoRedirects) {
  Pipeline px;
  DynaCut dc(px.vos, px.pid);
  CustomizeReport rep = dc.disable_feature({
      px.feature_b, RemovalPolicy::kWipeBlocks, TrapPolicy::kRedirect});
  EXPECT_GT(rep.edits.blocks_patched, 0u);
  EXPECT_EQ(px.request("B\n"), "err\n");
  // Wipe is reversible too.
  dc.restore_feature("B");
  EXPECT_EQ(px.request("B\n"), "beta\n");
}

TEST(DynaCut, WipedBlocksContainOnlyTraps) {
  Pipeline px;
  DynaCut dc(px.vos, px.pid);
  dc.disable_feature({px.feature_b, RemovalPolicy::kWipeBlocks,
                     TrapPolicy::kRedirect});
  // Inspect live memory: every byte of handle_b's traced blocks is 0xCC
  // (no ROP gadgets left inside the wiped feature).
  const os::Process* p = px.vos.process(px.pid);
  const os::LoadedModule* app = p->module_named("toysrv");
  const melf::Symbol* hb = px.bin->find_symbol("handle_b");
  for (const auto& b : px.feature_b.blocks) {
    if (b.offset < hb->value || b.offset >= hb->value + hb->size) continue;
    auto bytes = p->mem.peek_bytes(app->base + b.offset, b.size);
    for (uint8_t byte : bytes) EXPECT_EQ(byte, 0xCC);
  }
}

TEST(DynaCut, TerminatePolicyKillsOnAccess) {
  Pipeline px;
  DynaCut dc(px.vos, px.pid);
  dc.disable_feature({px.feature_b, RemovalPolicy::kBlockFirstByte,
                     TrapPolicy::kTerminate});
  EXPECT_EQ(px.request("A\n"), "alpha\n");  // alive until touched
  px.conn.send("B\n");
  px.vos.run();
  EXPECT_EQ(px.vos.process(px.pid)->term_signal, os::sig::kSigTrap);
}

TEST(DynaCut, VerifyModeHealsAndLogsFalsePositives) {
  // Deliberately over-remove: mark feature-A blocks as undesired, run A
  // requests, and watch the verifier restore them on the fly (§3.2.3).
  Pipeline px;
  FeatureSpec bad;
  bad.name = "A_overremoved";
  const melf::Symbol* ha = px.bin->find_symbol("handle_a");
  bad.blocks = {CovBlock{"toysrv", ha->value, 1}};

  DynaCut dc(px.vos, px.pid);
  dc.disable_feature({bad, RemovalPolicy::kBlockFirstByte, TrapPolicy::kVerify});

  // First A request trips the verifier, which heals the byte and retries.
  EXPECT_EQ(px.request("A\n"), "alpha\n");
  EXPECT_EQ(px.vos.process(px.pid)->term_signal, 0);

  auto log = dc.verifier_log(px.pid);
  const os::LoadedModule* app = px.vos.process(px.pid)->module_named("toysrv");
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], app->base + ha->value);

  // Healed: subsequent requests don't trap again (log stays at 1).
  EXPECT_EQ(px.request("A\n"), "alpha\n");
  EXPECT_EQ(dc.verifier_log(px.pid).size(), 1u);
}

TEST(DynaCut, VerifyRequiresFirstBytePolicy) {
  Pipeline px;
  DynaCut dc(px.vos, px.pid);
  EXPECT_THROW(dc.disable_feature({px.feature_b, RemovalPolicy::kWipeBlocks,
                                  TrapPolicy::kVerify}),
               StateError);
}

TEST(DynaCut, DoubleDisableThrows) {
  Pipeline px;
  DynaCut dc(px.vos, px.pid);
  dc.disable_feature({px.feature_b, RemovalPolicy::kBlockFirstByte,
                     TrapPolicy::kRedirect});
  EXPECT_THROW(dc.disable_feature({px.feature_b,
                                  RemovalPolicy::kBlockFirstByte,
                                  TrapPolicy::kRedirect}),
               StateError);
}

TEST(DynaCut, RestoreUnknownFeatureThrows) {
  Pipeline px;
  DynaCut dc(px.vos, px.pid);
  EXPECT_THROW(dc.restore_feature("never_disabled"), StateError);
}

// Feature names become ImageKey feature-set tags: the reserved pre-rewrite
// tag would overwrite the pristine rollback image's key, '+' is the tag
// separator, and an empty name yields ambiguous tags — all rejected before
// any process is touched.
TEST(DynaCut, ReservedOrSeparatorFeatureNamesThrow) {
  Pipeline px;
  DynaCut dc(px.vos, px.pid);
  for (const char* bad : {"pre", "a+b", ""}) {
    FeatureSpec spec = px.feature_b;
    spec.name = bad;
    EXPECT_THROW(dc.disable_feature({spec, RemovalPolicy::kBlockFirstByte,
                                    TrapPolicy::kRedirect}),
                 StateError)
        << "feature name '" << bad << "' must be rejected";
  }
  EXPECT_TRUE(dc.disabled_features().empty());
}

TEST(DynaCut, RedirectOutsideAnyFunctionThrows) {
  Pipeline px;
  FeatureSpec spec = px.feature_b;
  spec.redirect_offset = 0xfffff;  // not inside any function
  DynaCut dc(px.vos, px.pid);
  EXPECT_THROW(dc.disable_feature({spec, RemovalPolicy::kBlockFirstByte,
                                  TrapPolicy::kRedirect}),
               StateError);
}

TEST(DynaCut, RedirectWithNoSameFunctionBlockThrows) {
  // All blocks in handle_b (not dispatch) + target in dispatch => the
  // same-function restriction rejects the redirect.
  Pipeline px;
  FeatureSpec spec;
  spec.name = "only_handler_blocks";
  const melf::Symbol* hb = px.bin->find_symbol("handle_b");
  spec.blocks = {CovBlock{"toysrv", hb->value, 1}};
  spec.redirect_module = "toysrv";
  spec.redirect_offset = px.bin->find_symbol("dispatch_err")->value;
  DynaCut dc(px.vos, px.pid);
  EXPECT_THROW(dc.disable_feature({spec, RemovalPolicy::kBlockFirstByte,
                                  TrapPolicy::kRedirect}),
               StateError);
}

TEST(DynaCut, ServiceInterruptionChargedToClock) {
  Pipeline px;
  DynaCut dc(px.vos, px.pid);
  uint64_t before = px.vos.now();
  CustomizeReport rep = dc.disable_feature({
      px.feature_b, RemovalPolicy::kBlockFirstByte, TrapPolicy::kRedirect});
  uint64_t elapsed = px.vos.now() - before;
  EXPECT_GE(elapsed, rep.timing.total_ns());
  EXPECT_GT(rep.timing.checkpoint_ns, 0u);
  EXPECT_GT(rep.timing.code_update_ns, 0u);
  EXPECT_GT(rep.timing.inject_ns, 0u);
  EXPECT_GT(rep.timing.restore_ns, 0u);
  // Feature blocking is sub-second on server-sized images (paper Fig. 6).
  EXPECT_LT(rep.timing.total_seconds(), 1.0);
}

TEST(DynaCut, ImageStoreHoldsRewrittenImage) {
  Pipeline px;
  DynaCut dc(px.vos, px.pid);
  dc.disable_feature({px.feature_b, RemovalPolicy::kBlockFirstByte,
                     TrapPolicy::kRedirect});
  // Committed images file under the typed key {pid, feature_set_tag}; the
  // pristine pre-image sits beside it under the reserved "pre" tag.
  const image::ImageKey key = dc.image_key(px.pid);
  EXPECT_EQ(key.feature_set_tag, px.feature_b.name);
  ASSERT_TRUE(dc.store().contains(key));
  ASSERT_TRUE(dc.store().contains(
      image::ImageKey{px.pid, image::ImageKey::kPreTag}));
  image::ProcessImage img = dc.store().get(key);
  // The stored image is the rewritten one: the handler library is present.
  EXPECT_NE(img.module_named(kSigLibName), nullptr);
}

TEST(DynaCut, InitCodeRemovalTrapsInitOnlyBlocks) {
  // Collect init/serving phases online with the nudge, remove init-only
  // blocks, confirm the server still serves and the init code is gone.
  os::Os vos;
  trace::Tracer tracer(vos);
  auto bin = testing::build_toysrv();
  int pid = vos.spawn(bin, {apps::build_libc()});
  vos.run();
  trace::TraceLog init_log = tracer.dump_and_reset(pid);
  auto conn = vos.connect(80);
  conn.send("A\nB\n");
  vos.run();
  trace::TraceLog serving_log = tracer.dump(pid);
  conn.recv_all();  // drain the profiling replies

  CoverageGraph init_blocks =
      analysis::init_only(init_log, serving_log, "toysrv");
  ASSERT_FALSE(init_blocks.empty());

  DynaCut dc(vos, pid);
  CustomizeReport rep =
      dc.remove_init_code(init_blocks, RemovalPolicy::kWipeBlocks);
  EXPECT_EQ(rep.edits.blocks_patched, init_blocks.size());

  conn.send("A\n");
  vos.run();
  EXPECT_EQ(conn.recv_all(), "alpha\n");  // serving path intact

  // The init function's entry byte is now a trap in live memory.
  const os::Process* p = vos.process(pid);
  const os::LoadedModule* app = p->module_named("toysrv");
  uint64_t init_addr = app->base + bin->find_symbol("init")->value;
  EXPECT_EQ(p->mem.peek_bytes(init_addr, 1)[0], 0xCC);
}

TEST(DynaCut, UnmapPolicyRemovesWholePagesAndRestores) {
  // Build a guest with a page-sized removable function so the unmap path
  // (not just the wipe fallback) is exercised.
  namespace sys = os::sys;
  melf::ProgramBuilder b("bigfeat");
  auto& big = b.func("big_feature");
  for (int i = 0; i < 600; ++i) big.nop();  // straight-line filler
  big.mov_ri(0, 7).ret();
  auto& f = b.func("main");
  f.label("spin").mov_ri(1, 1000).sys(sys::kNanosleep).jmp("spin");
  b.set_entry("main");
  auto bin = std::make_shared<melf::Binary>(b.link());

  os::Os vos;
  int pid = vos.spawn(bin);
  vos.run(3000);

  const melf::Symbol* feat = bin->find_symbol("big_feature");
  // Cover two full pages worth of the function plus slack.
  FeatureSpec spec;
  spec.name = "big";
  spec.blocks = {CovBlock{"bigfeat", feat->value,
                          static_cast<uint32_t>(2 * kPageSize)}};
  // Map the whole feature span as one block: ensure VMA is large enough.
  DynaCut dc(vos, pid);
  CustomizeReport rep =
      dc.disable_feature({spec, RemovalPolicy::kUnmapPages,
                         TrapPolicy::kTerminate});
  EXPECT_GT(rep.edits.pages_unmapped, 0u);

  const os::Process* p = vos.process(pid);
  uint64_t page = page_ceil(kAppBase + feat->value);  // first full page
  EXPECT_EQ(p->mem.vma_at(page), nullptr);

  // Restore brings the pages and their bytes back.
  dc.restore_feature("big");
  const os::Process* p2 = vos.process(pid);
  ASSERT_NE(p2->mem.vma_at(page), nullptr);
  auto bytes = p2->mem.peek_bytes(kAppBase + feat->value, 4);
  EXPECT_EQ(bytes[0], 0x90);  // the nop filler is back
}

TEST(DynaCut, MultiProcessGroupCustomizedTogether) {
  // A master+worker pair (nginx-style): both processes get the patch.
  namespace sys = os::sys;
  melf::ProgramBuilder b("master");
  b.func("victim").mov_ri(0, 1).ret();
  auto& f = b.func("main");
  f.sys(sys::kFork);
  f.label("spin").mov_ri(1, 500).sys(sys::kNanosleep).jmp("spin");
  b.set_entry("main");
  auto bin = std::make_shared<melf::Binary>(b.link());

  os::Os vos;
  int pid = vos.spawn(bin);
  vos.run(3000);
  ASSERT_EQ(vos.process_group(pid).size(), 2u);

  FeatureSpec spec;
  spec.name = "victim";
  spec.blocks = {CovBlock{"master", bin->find_symbol("victim")->value, 1}};
  DynaCut dc(vos, pid);
  CustomizeReport rep = dc.disable_feature({
      spec, RemovalPolicy::kBlockFirstByte, TrapPolicy::kTerminate});
  EXPECT_EQ(rep.edits.processes, 2u);
  EXPECT_EQ(rep.edits.blocks_patched, 2u);

  uint64_t addr = kAppBase + bin->find_symbol("victim")->value;
  for (int p : vos.process_group(pid)) {
    EXPECT_EQ(vos.process(p)->mem.peek_bytes(addr, 1)[0], 0xCC)
        << "pid " << p;
  }
}

TEST(DynaCut, ConstructorRejectsUnknownPid) {
  os::Os vos;
  EXPECT_THROW(DynaCut(vos, 4242), StateError);
}

}  // namespace
}  // namespace dynacut::core
