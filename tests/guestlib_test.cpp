// Behavioural tests for the guest libc.so: every exported routine is driven
// from a small guest program and its result surfaced via the exit code.
#include <gtest/gtest.h>

#include <functional>

#include "apps/libc.hpp"
#include "melf/builder.hpp"
#include "os/os.hpp"
#include "os/syscall.hpp"

namespace dynacut::apps {
namespace {

using melf::Binary;
using melf::FunctionBuilder;
using melf::ProgramBuilder;
using os::Os;
namespace sys = os::sys;

/// Runs a guest whose body leaves the value-under-test in r1 and exits.
int run_guest(const std::function<void(ProgramBuilder&, FunctionBuilder&)>&
                  populate) {
  ProgramBuilder b("t");
  auto& f = b.func("main");
  populate(b, f);
  f.sys(sys::kExit);
  b.set_entry("main");
  Os os;
  int pid = os.spawn(std::make_shared<Binary>(b.link()), {build_libc()});
  os.run();
  const os::Process* p = os.process(pid);
  EXPECT_TRUE(os.all_exited());
  EXPECT_EQ(p->term_signal, 0) << "guest killed by signal";
  return p->exit_code;
}

TEST(GuestLibc, Strlen) {
  int code = run_guest([](ProgramBuilder& b, FunctionBuilder& f) {
    b.rodata_str("s", "hello, world");
    f.mov_sym(1, "s").call_import("strlen").mov_rr(1, 0);
  });
  EXPECT_EQ(code, 12);
}

TEST(GuestLibc, StrlenEmpty) {
  int code = run_guest([](ProgramBuilder& b, FunctionBuilder& f) {
    b.rodata_str("s", "");
    f.mov_sym(1, "s").call_import("strlen").mov_rr(1, 0);
  });
  EXPECT_EQ(code, 0);
}

TEST(GuestLibc, StrcmpEqual) {
  int code = run_guest([](ProgramBuilder& b, FunctionBuilder& f) {
    b.rodata_str("a", "GET");
    b.rodata_str("b", "GET");
    f.mov_sym(1, "a").mov_sym(2, "b").call_import("strcmp").mov_rr(1, 0);
  });
  EXPECT_EQ(code, 0);
}

TEST(GuestLibc, StrcmpDifferent) {
  int code = run_guest([](ProgramBuilder& b, FunctionBuilder& f) {
    b.rodata_str("a", "GET");
    b.rodata_str("b", "GE!");
    f.mov_sym(1, "a").mov_sym(2, "b").call_import("strcmp").mov_rr(1, 0);
  });
  EXPECT_EQ(code, 1);
}

TEST(GuestLibc, StrcmpPrefixDiffers) {
  int code = run_guest([](ProgramBuilder& b, FunctionBuilder& f) {
    b.rodata_str("a", "SET");
    b.rodata_str("b", "SETRANGE");
    f.mov_sym(1, "a").mov_sym(2, "b").call_import("strcmp").mov_rr(1, 0);
  });
  EXPECT_EQ(code, 1);
}

TEST(GuestLibc, StrncmpStopsAtN) {
  int code = run_guest([](ProgramBuilder& b, FunctionBuilder& f) {
    b.rodata_str("a", "SETRANGE");
    b.rodata_str("b", "SETXXXXX");
    f.mov_sym(1, "a").mov_sym(2, "b").mov_ri(3, 3).call_import("strncmp");
    f.mov_rr(1, 0);
  });
  EXPECT_EQ(code, 0);
}

TEST(GuestLibc, StrncmpSeesDifferenceWithinN) {
  int code = run_guest([](ProgramBuilder& b, FunctionBuilder& f) {
    b.rodata_str("a", "PUT");
    b.rodata_str("b", "POT");
    f.mov_sym(1, "a").mov_sym(2, "b").mov_ri(3, 3).call_import("strncmp");
    f.mov_rr(1, 0);
  });
  EXPECT_EQ(code, 1);
}

TEST(GuestLibc, StrcpyThenStrlen) {
  int code = run_guest([](ProgramBuilder& b, FunctionBuilder& f) {
    b.rodata_str("src", "copied");
    b.bss("dst", 32);
    f.mov_sym(1, "dst").mov_sym(2, "src").call_import("strcpy");
    f.mov_rr(1, 0).call_import("strlen").mov_rr(1, 0);
  });
  EXPECT_EQ(code, 6);
}

TEST(GuestLibc, MemsetFillsBytes) {
  int code = run_guest([](ProgramBuilder& b, FunctionBuilder& f) {
    b.bss("buf", 16);
    f.mov_sym(1, "buf").mov_ri(2, 0x5a).mov_ri(3, 8).call_import("memset");
    f.mov_sym(6, "buf").loadb(7, 6, 7).loadb(8, 6, 8);  // inside / outside
    f.mov_rr(1, 7).shl_ri(1, 8).or_rr(1, 8);  // (buf[7]<<8) | buf[8]
  });
  EXPECT_EQ(code, 0x5a00);
}

TEST(GuestLibc, MemcpyCopiesExactLength) {
  int code = run_guest([](ProgramBuilder& b, FunctionBuilder& f) {
    b.rodata_str("src", "abcdef");
    b.bss("dst", 16);
    f.mov_sym(1, "dst").mov_sym(2, "src").mov_ri(3, 3).call_import("memcpy");
    f.mov_sym(6, "dst").loadb(7, 6, 2).loadb(8, 6, 3);  // 'c' and 0
    f.mov_rr(1, 7).shl_ri(1, 8).or_rr(1, 8);
  });
  EXPECT_EQ(code, 'c' << 8);
}

TEST(GuestLibc, AtoiParsesDecimal) {
  int code = run_guest([](ProgramBuilder& b, FunctionBuilder& f) {
    b.rodata_str("n", "217");
    f.mov_sym(1, "n").call_import("atoi").mov_rr(1, 0);
  });
  EXPECT_EQ(code, 217);
}

TEST(GuestLibc, AtoiStopsAtNonDigit) {
  int code = run_guest([](ProgramBuilder& b, FunctionBuilder& f) {
    b.rodata_str("n", "42abc");
    f.mov_sym(1, "n").call_import("atoi").mov_rr(1, 0);
  });
  EXPECT_EQ(code, 42);
}

TEST(GuestLibc, AtoiEmptyIsZero) {
  int code = run_guest([](ProgramBuilder& b, FunctionBuilder& f) {
    b.rodata_str("n", "x");
    f.mov_sym(1, "n").call_import("atoi").mov_rr(1, 0);
  });
  EXPECT_EQ(code, 0);
}

TEST(GuestLibc, UtoaRoundtripsThroughAtoi) {
  int code = run_guest([](ProgramBuilder& b, FunctionBuilder& f) {
    b.bss("buf", 32);
    f.mov_ri(1, 90817).mov_sym(2, "buf").call_import("utoa");
    f.mov_sym(1, "buf").call_import("atoi").mov_rr(1, 0);
  });
  EXPECT_EQ(code, 90817);
}

TEST(GuestLibc, UtoaZero) {
  int code = run_guest([](ProgramBuilder& b, FunctionBuilder& f) {
    b.bss("buf", 32);
    f.mov_ri(1, 0).mov_sym(2, "buf").call_import("utoa");
    f.mov_rr(12, 0);  // returned length
    f.mov_sym(6, "buf").loadb(7, 6, 0);
    // exit( (len << 8) | first_char )
    f.mov_rr(1, 12).shl_ri(1, 8).or_rr(1, 7);
  });
  EXPECT_EQ(code, (1 << 8) | '0');
}

TEST(GuestLibc, UtoaReturnsDigitCount) {
  int code = run_guest([](ProgramBuilder& b, FunctionBuilder& f) {
    b.bss("buf", 32);
    f.mov_ri(1, 123456).mov_sym(2, "buf").call_import("utoa").mov_rr(1, 0);
  });
  EXPECT_EQ(code, 6);
}

TEST(GuestLibc, WriteStrToStdout) {
  ProgramBuilder b("ws");
  b.rodata_str("msg", "ready\n");
  auto& f = b.func("main");
  f.mov_ri(1, 1).mov_sym(2, "msg").call_import("write_str");
  f.mov_ri(1, 0).sys(sys::kExit);
  b.set_entry("main");
  Os os;
  int pid = os.spawn(std::make_shared<Binary>(b.link()), {build_libc()});
  os.run();
  EXPECT_EQ(os.process(pid)->stdout_buf, "ready\n");
}

TEST(GuestLibc, RecvLineReadsExactlyOneLine) {
  ProgramBuilder b("rl");
  b.bss("buf", 64);
  auto& f = b.func("main");
  f.sys(sys::kSocket).mov_rr(12, 0);
  f.mov_rr(1, 12).mov_ri(2, 21).sys(sys::kBind);
  f.mov_rr(1, 12).sys(sys::kListen);
  f.mov_rr(1, 12).sys(sys::kAccept).mov_rr(13, 0);
  f.mov_rr(1, 13).mov_sym(2, "buf").mov_ri(3, 64).call_import("recv_line");
  f.mov_rr(12, 0);  // first line length
  f.mov_rr(1, 13).mov_sym(2, "buf").mov_ri(3, 64).call_import("recv_line");
  // exit( first_len * 100 + second_len )
  f.mov_ri(6, 100).mul_rr(12, 6).add_rr(12, 0).mov_rr(1, 12).sys(sys::kExit);
  b.set_entry("main");
  Os os;
  int pid = os.spawn(std::make_shared<Binary>(b.link()), {build_libc()});
  os.run();
  auto conn = os.connect(21);
  conn.send("abc\nde\n");  // two lines in one burst
  os.run();
  ASSERT_TRUE(os.all_exited());
  EXPECT_EQ(os.process(pid)->exit_code, 4 * 100 + 3);
}

TEST(GuestLibc, RecvLineEofReturnsZero) {
  ProgramBuilder b("rleof");
  b.bss("buf", 64);
  auto& f = b.func("main");
  f.sys(sys::kSocket).mov_rr(12, 0);
  f.mov_rr(1, 12).mov_ri(2, 22).sys(sys::kBind);
  f.mov_rr(1, 12).sys(sys::kListen);
  f.mov_rr(1, 12).sys(sys::kAccept).mov_rr(13, 0);
  f.mov_rr(1, 13).mov_sym(2, "buf").mov_ri(3, 64).call_import("recv_line");
  f.add_ri(0, 50).mov_rr(1, 0).sys(sys::kExit);
  b.set_entry("main");
  Os os;
  int pid = os.spawn(std::make_shared<Binary>(b.link()), {build_libc()});
  os.run();
  auto conn = os.connect(22);
  os.run();
  conn.close();
  os.run();
  ASSERT_TRUE(os.all_exited());
  EXPECT_EQ(os.process(pid)->exit_code, 50);
}

TEST(GuestLibc, BinaryShapeSanity) {
  auto libc = build_libc();
  EXPECT_EQ(libc->name, "libc.so");
  EXPECT_EQ(libc->entry, melf::Binary::kNoEntry);  // library, not executable
  EXPECT_TRUE(libc->imports.empty());
  for (const char* name :
       {"strlen", "strcmp", "strncmp", "strcpy", "memset", "memcpy", "atoi",
        "utoa", "write_str", "recv_line"}) {
    const melf::Symbol* s = libc->find_symbol(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_TRUE(s->global);
    EXPECT_TRUE(s->is_function);
  }
}

}  // namespace
}  // namespace dynacut::apps
