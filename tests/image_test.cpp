// Tests for crsim: checkpoint/restore fidelity, image addressing, VMA
// surgery, serialization, TCP_REPAIR-style socket survival, ImageStore.
#include <gtest/gtest.h>

#include "apps/libc.hpp"
#include "image/checkpoint.hpp"
#include "image/image.hpp"
#include "melf/builder.hpp"
#include "os/os.hpp"
#include "test_guests.hpp"

namespace dynacut::image {
namespace {

namespace sys = os::sys;
using melf::Binary;
using melf::ProgramBuilder;

// ---------------------------------------------------------------------------
// ProcessImage addressing primitives
// ---------------------------------------------------------------------------

ProcessImage blank_image() {
  ProcessImage img;
  img.add_vma(0x1000, 0x2000, kProtRead | kProtWrite, "test");
  return img;
}

TEST(ProcessImage, ReadOfUnpopulatedPageIsZero) {
  ProcessImage img = blank_image();
  EXPECT_EQ(img.read_u64(0x1100), 0u);
  EXPECT_TRUE(img.pages.empty());
}

TEST(ProcessImage, WriteReadRoundtripAcrossPageBoundary) {
  ProcessImage img = blank_image();
  std::vector<uint8_t> data(100);
  for (size_t i = 0; i < data.size(); ++i) data[i] = uint8_t(i);
  img.write_bytes(0x1fd0, data);
  EXPECT_EQ(img.read_bytes(0x1fd0, 100), data);
  EXPECT_EQ(img.pages.size(), 2u);
}

TEST(ProcessImage, AccessOutsideVmaThrows) {
  ProcessImage img = blank_image();
  EXPECT_THROW(img.read_bytes(0x3000, 1), StateError);
  EXPECT_THROW(img.read_bytes(0x2ff0, 0x20), StateError);  // straddles end
  uint8_t b = 0;
  EXPECT_THROW(img.write_bytes(0x0ff8, std::span(&b, 1)), StateError);
}

TEST(ProcessImage, AddVmaRejectsOverlap) {
  ProcessImage img = blank_image();
  EXPECT_THROW(img.add_vma(0x2000, 0x1000, 0, "x"), StateError);
  img.add_vma(0x4000, 0x1000, 0, "ok");
  EXPECT_NE(img.vma_at(0x4000), nullptr);
}

TEST(ProcessImage, DropRangeRemovesPagesAndSplits) {
  ProcessImage img = blank_image();
  img.write_u64(0x1000, 1);
  img.write_u64(0x2000, 2);
  img.drop_range(0x1000, 0x1000);
  EXPECT_EQ(img.vma_at(0x1000), nullptr);
  EXPECT_NE(img.vma_at(0x2000), nullptr);
  EXPECT_EQ(img.pages.count(0x1000), 0u);
  EXPECT_EQ(img.read_u64(0x2000), 2u);
  EXPECT_THROW(img.drop_range(0x7000, 0x1000), StateError);
}

TEST(ProcessImage, GrowVma) {
  ProcessImage img = blank_image();
  img.grow_vma(0x1000, 0x1000);
  EXPECT_NE(img.vma_at(0x3500), nullptr);
  img.add_vma(0x5000, 0x1000, 0, "wall");
  EXPECT_THROW(img.grow_vma(0x1000, 0x2000), StateError);  // hits the wall
  EXPECT_THROW(img.grow_vma(0x9000, 0x1000), StateError);  // no such VMA
}

TEST(ProcessImage, FindFreeSkipsVmas) {
  ProcessImage img = blank_image();  // [0x1000, 0x3000)
  EXPECT_EQ(img.find_free(0x1000, 0x1000), 0x3000u);
  EXPECT_EQ(img.find_free(0x1000, 0x8000), 0x8000u);
}

// ---------------------------------------------------------------------------
// Checkpoint / restore semantics
// ---------------------------------------------------------------------------

TEST(Checkpoint, FreezesAndCapturesState) {
  ProgramBuilder b("counter");
  b.data_u64("n", 0);
  auto& f = b.func("main");
  f.mov_sym(6, "n")
      .label("loop")
      .load(7, 6, 0)
      .add_ri(7, 1)
      .store(6, 0, 7)
      .mov_ri(1, 5)
      .sys(sys::kNanosleep)
      .jmp("loop");
  b.set_entry("main");

  os::Os vos;
  int pid = vos.spawn(std::make_shared<Binary>(b.link()));
  vos.run(5000);

  ProcessImage img = checkpoint(vos, {.pid = pid}).img;
  EXPECT_EQ(vos.process(pid)->state, os::Process::State::kFrozen);
  EXPECT_EQ(img.core.proc_name, "counter");
  EXPECT_EQ(img.core.pid, pid);
  EXPECT_GT(img.pages.size(), 0u);
  EXPECT_GE(img.vmas.size(), 3u);  // text + data/got + stack at minimum
  EXPECT_FALSE(img.modules.empty());

  // Restore and verify the process resumes counting where it left off.
  const melf::Symbol* n = img.modules.back().binary->find_symbol("n");
  uint64_t base = img.modules.back().base;
  uint64_t count_at_dump = img.read_u64(base + n->value);
  restore(vos, {.pid = pid, .img = &img});
  vos.run(5000);
  uint64_t count_later = 0;
  vos.process(pid)->mem.peek(base + n->value, &count_later, 8);
  EXPECT_GT(count_later, count_at_dump);
}

TEST(Checkpoint, RestoreRequiresFrozenProcess) {
  ProgramBuilder b("idle");
  b.func("main").label("s").jmp("s");
  b.set_entry("main");
  os::Os vos;
  int pid = vos.spawn(std::make_shared<Binary>(b.link()));
  ProcessImage img = checkpoint(vos, {.pid = pid}).img;
  restore(vos, {.pid = pid, .img = &img});
  EXPECT_THROW(restore(vos, {.pid = pid, .img = &img}), StateError);  // no longer frozen
}

TEST(Checkpoint, ImageEditVisibleAfterRestore) {
  // The DynaCut flow: dump, mutate image memory, restore, observe change.
  ProgramBuilder b("mutate");
  b.data_u64("flag", 1);
  auto& f = b.func("main");
  f.label("wait")
      .mov_sym(6, "flag")
      .load(7, 6, 0)
      .cmp_ri(7, 1)
      .je("sleepon")
      .mov_ri(1, 42)
      .sys(sys::kExit)
      .label("sleepon")
      .mov_ri(1, 50)
      .sys(sys::kNanosleep)
      .jmp("wait");
  b.set_entry("main");

  os::Os vos;
  int pid = vos.spawn(std::make_shared<Binary>(b.link()));
  vos.run(2000);
  ProcessImage img = checkpoint(vos, {.pid = pid}).img;
  const melf::Symbol* flag = img.modules.back().binary->find_symbol("flag");
  img.write_u64(img.modules.back().base + flag->value, 0);
  restore(vos, {.pid = pid, .img = &img});
  vos.run();
  ASSERT_TRUE(vos.all_exited());
  EXPECT_EQ(vos.process(pid)->exit_code, 42);
}

TEST(Checkpoint, SocketsSurviveCheckpointRestore) {
  // TCP_REPAIR analogue: a connected client keeps working after the server
  // was dumped and restored mid-connection.
  os::Os vos;
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  vos.run();
  auto conn = vos.connect(80);
  conn.send("A\n");
  vos.run();
  EXPECT_EQ(conn.recv_all(), "alpha\n");

  ProcessImage img = checkpoint(vos, {.pid = pid}).img;
  // In-flight bytes arriving while frozen must not be lost.
  conn.send("B\n");
  restore(vos, {.pid = pid, .img = &img});
  vos.run();
  EXPECT_EQ(conn.recv_all(), "beta\n");
  conn.send("Q\n");
  vos.run();
  EXPECT_TRUE(vos.all_exited());
}

TEST(Checkpoint, GroupCapturesWholeTree) {
  ProgramBuilder b("family");
  auto& f = b.func("main");
  f.sys(sys::kFork);
  f.label("spin").mov_ri(1, 100).sys(sys::kNanosleep).jmp("spin");
  b.set_entry("main");
  os::Os vos;
  int pid = vos.spawn(std::make_shared<Binary>(b.link()));
  vos.run(2000);
  auto images = checkpoint_group(vos, pid);
  ASSERT_EQ(images.size(), 2u);
  EXPECT_EQ(images[0].core.pid, pid);
  EXPECT_EQ(images[1].core.ppid, pid);
  for (const auto& img : images) {
    restore(vos, {.pid = img.core.pid, .img = &img});
  }
}

TEST(Checkpoint, FdTableCapturesSocketState) {
  os::Os vos;
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  vos.run();
  auto conn = vos.connect(80);
  vos.run();
  // Queue a request that stays buffered while we dump.
  conn.send("A\n");
  ProcessImage img = checkpoint(vos, {.pid = pid}).img;
  bool saw_listen = false, saw_stream_with_bytes = false;
  for (const auto& fd : img.fds) {
    if (fd.sock_kind == 1) saw_listen = true;
    if (fd.sock_kind == 2 && !fd.rx_bytes.empty()) {
      saw_stream_with_bytes = true;
      EXPECT_EQ(std::string(fd.rx_bytes.begin(), fd.rx_bytes.end()), "A\n");
    }
  }
  EXPECT_TRUE(saw_listen);
  EXPECT_TRUE(saw_stream_with_bytes);
  restore(vos, {.pid = pid, .img = &img});
}

TEST(Checkpoint, DeprecatedPositionalShimsStillWork) {
  // The pre-CkptRequest positional signatures survive as [[deprecated]]
  // shims forwarding to the struct API; old callers behave identically.
  os::Os vos;
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  vos.run();
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  CkptStats st;
  ProcessImage img = checkpoint(vos, pid, nullptr, nullptr, nullptr, &st);
  EXPECT_EQ(st.pages_dumped, st.pages_total);
  RestoreStats rst = restore(vos, pid, img);
#pragma GCC diagnostic pop
  EXPECT_TRUE(rst.in_place);
  EXPECT_EQ(img.encode(), checkpoint(vos, {.pid = pid}).img.encode());
}

TEST(Checkpoint, RestoreNewBootsFromStoredImage) {
  // Paper footnote 5: restoring a post-init image replaces rerunning init.
  os::Os vos;
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  vos.run();  // init complete, listening
  ProcessImage img = checkpoint(vos, {.pid = pid}).img;
  vos.kill(pid);

  int pid2 = restore_new(vos, img);
  EXPECT_NE(pid2, pid);
  vos.run();
  // The listener was re-registered; a fresh client can connect and the
  // server must NOT re-run init (stdout of the new process stays empty).
  auto conn = vos.connect(80);
  conn.send("A\nQ\n");
  vos.run();
  EXPECT_EQ(conn.recv_all(), "alpha\n");
  EXPECT_EQ(vos.process(pid2)->stdout_buf, "");  // no second "ready"
}

// ---------------------------------------------------------------------------
// Serialization + store
// ---------------------------------------------------------------------------

TEST(ImageFormat, EncodeDecodeRoundtrip) {
  os::Os vos;
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  vos.run();
  ProcessImage img = checkpoint(vos, {.pid = pid}).img;
  ProcessImage back = ProcessImage::decode(img.encode());

  EXPECT_EQ(back.core.proc_name, img.core.proc_name);
  EXPECT_EQ(back.core.cpu.ip, img.core.cpu.ip);
  EXPECT_EQ(back.core.cpu.regs, img.core.cpu.regs);
  ASSERT_EQ(back.vmas.size(), img.vmas.size());
  for (size_t i = 0; i < img.vmas.size(); ++i) {
    EXPECT_EQ(back.vmas[i].start, img.vmas[i].start);
    EXPECT_EQ(back.vmas[i].end, img.vmas[i].end);
    EXPECT_EQ(back.vmas[i].prot, img.vmas[i].prot);
    EXPECT_EQ(back.vmas[i].name, img.vmas[i].name);
  }
  ASSERT_EQ(back.pages.size(), img.pages.size());
  for (const auto& [addr, block] : img.pages) {
    ASSERT_TRUE(back.pages.count(addr));
    EXPECT_EQ(back.pages.at(addr), *block);
  }
  ASSERT_EQ(back.fds.size(), img.fds.size());
  ASSERT_EQ(back.modules.size(), img.modules.size());
  for (size_t i = 0; i < img.modules.size(); ++i) {
    EXPECT_EQ(back.modules[i].name, img.modules[i].name);
    EXPECT_EQ(back.modules[i].base, img.modules[i].base);
    EXPECT_EQ(back.modules[i].binary->encode(),
              img.modules[i].binary->encode());
  }
  restore(vos, {.pid = pid, .img = &img});
}

TEST(ImageFormat, DecodeRejectsGarbage) {
  std::vector<uint8_t> junk(16, 0x41);
  EXPECT_THROW(ProcessImage::decode(junk), DecodeError);
}

TEST(ImageStore, PutGetRoundtrip) {
  ProcessImage img = blank_image();
  img.core.proc_name = "stored";
  img.write_u64(0x1000, 0xfeed);
  ImageStore store;
  const ImageKey key{7, "SET+TTL"};
  EXPECT_FALSE(store.contains(key));
  store.put(key, img);
  EXPECT_TRUE(store.contains(key));
  ProcessImage back = store.get(key);
  EXPECT_EQ(back.core.proc_name, "stored");
  EXPECT_EQ(back.read_u64(0x1000), 0xfeedu);
  EXPECT_GT(store.bytes_used(), 0u);
  EXPECT_THROW(store.get(ImageKey{7, "missing"}), StateError);
  EXPECT_THROW(store.get(ImageKey{8, "SET+TTL"}), StateError);
}

TEST(ImageStore, ListAndEraseTypedKeys) {
  ProcessImage img = blank_image();
  ImageStore store;
  store.put(ImageKey{1, ImageKey::kPreTag}, img);
  store.put(ImageKey{1, "SET"}, img);
  store.put(ImageKey{2, ImageKey::kPreTag}, img);
  std::vector<ImageKey> keys = store.list();
  ASSERT_EQ(keys.size(), 3u);
  // list() is ordered: by pid, then by feature-set tag.
  EXPECT_EQ(keys[0], (ImageKey{1, "SET"}));
  EXPECT_EQ(keys[1], (ImageKey{1, ImageKey::kPreTag}));
  EXPECT_EQ(keys[2], (ImageKey{2, ImageKey::kPreTag}));
  EXPECT_EQ(store.erase(ImageKey{1, "SET"}), 1u);
  EXPECT_EQ(store.erase(ImageKey{1, "SET"}), 0u);
  EXPECT_FALSE(store.contains(ImageKey{1, "SET"}));
  EXPECT_EQ(store.list().size(), 2u);
}

TEST(ImageStore, DeprecatedStringApiStillWorks) {
  // The pre-ImageKey string API survives as [[deprecated]] shims filed
  // under a reserved legacy namespace; old callers keep working unchanged.
  ProcessImage img = blank_image();
  img.core.proc_name = "legacy";
  ImageStore store;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_FALSE(store.contains("k"));
  store.put("k", img);
  EXPECT_TRUE(store.contains("k"));
  EXPECT_EQ(store.get("k").core.proc_name, "legacy");
  EXPECT_THROW(store.get("missing"), StateError);
#pragma GCC diagnostic pop
  // Legacy keys never collide with typed keys (reserved pid -1).
  EXPECT_FALSE(store.contains(ImageKey{0, "k"}));
  ASSERT_EQ(store.list().size(), 1u);
  EXPECT_EQ(store.list()[0].str(), "legacy:k");
}

TEST(ImageStore, DeserializedImageRestoresProcess) {
  // Full fidelity: serialize the image, decode it, restore the live process
  // from the decoded copy.
  os::Os vos;
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  vos.run();
  ProcessImage img = checkpoint(vos, {.pid = pid}).img;
  ImageStore store;
  const ImageKey key{pid, ImageKey::kPreTag};
  store.put(key, img);
  ProcessImage loaded = store.get(key);
  // Live socket handles don't survive serialization; splice them back the
  // way CRIU's TCP repair re-attaches connections.
  for (size_t i = 0; i < loaded.fds.size(); ++i) {
    loaded.fds[i].live = img.fds[i].live;
  }
  restore(vos, {.pid = pid, .img = &loaded});
  auto conn = vos.connect(80);
  conn.send("A\nQ\n");
  vos.run();
  EXPECT_EQ(conn.recv_all(), "alpha\n");
  EXPECT_TRUE(vos.all_exited());
}

}  // namespace
}  // namespace dynacut::image
