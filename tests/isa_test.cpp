// Unit and property tests for the VX64 ISA: encode/decode roundtrips,
// lengths, terminator classification, disassembly.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "isa/disasm.hpp"
#include "isa/encode.hpp"
#include "isa/isa.hpp"

namespace dynacut::isa {
namespace {

TEST(Isa, TrapIsOneByte0xCC) {
  // The entire DynaCut mechanism rests on this property (int3 analogue).
  EXPECT_EQ(static_cast<uint8_t>(Op::kTrap), 0xCC);
  EXPECT_EQ(instr_length(0xCC), 1);
  EXPECT_TRUE(is_terminator(Op::kTrap));
}

TEST(Isa, NopIsOneByte0x90) {
  EXPECT_EQ(static_cast<uint8_t>(Op::kNop), 0x90);
  EXPECT_EQ(instr_length(0x90), 1);
  EXPECT_FALSE(is_terminator(Op::kNop));
}

TEST(Isa, InvalidOpcodesRejected) {
  EXPECT_FALSE(valid_opcode(0x00));
  EXPECT_FALSE(valid_opcode(0xFF));
  EXPECT_EQ(instr_length(0x00), 0);
  uint8_t bad[4] = {0x00, 1, 2, 3};
  EXPECT_FALSE(try_decode(bad).has_value());
  EXPECT_THROW(decode(bad), DecodeError);
}

TEST(Isa, DecodeEmptySpanFails) {
  EXPECT_FALSE(try_decode({}).has_value());
  EXPECT_THROW(decode({}), DecodeError);
}

TEST(Isa, TruncatedEncodingFails) {
  std::vector<uint8_t> code;
  Encoder enc(code);
  enc.mov_ri(3, 0x1122334455667788ULL);
  ASSERT_EQ(code.size(), 10u);
  EXPECT_FALSE(try_decode({code.data(), 9}).has_value());  // cut last byte
  EXPECT_TRUE(try_decode({code.data(), 10}).has_value());
}

TEST(Isa, MovRiRoundtrip) {
  std::vector<uint8_t> code;
  Encoder enc(code);
  enc.mov_ri(7, 0xdeadbeefcafef00dULL);
  Instr ins = decode(code);
  EXPECT_EQ(ins.op, Op::kMovRI);
  EXPECT_EQ(ins.r1, 7);
  EXPECT_EQ(static_cast<uint64_t>(ins.imm), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(ins.length, 10);
}

TEST(Isa, LoadStoreRoundtrip) {
  std::vector<uint8_t> code;
  Encoder enc(code);
  enc.load(2, 5, -16);
  enc.store(5, 24, 3);
  Instr load = decode(code);
  EXPECT_EQ(load.op, Op::kLoad);
  EXPECT_EQ(load.r1, 2);
  EXPECT_EQ(load.r2, 5);
  EXPECT_EQ(load.imm, -16);
  Instr store = decode(std::span(code).subspan(load.length));
  EXPECT_EQ(store.op, Op::kStore);
  EXPECT_EQ(store.r1, 5);  // base register
  EXPECT_EQ(store.r2, 3);  // source register
  EXPECT_EQ(store.imm, 24);
}

TEST(Isa, BranchTargetComputation) {
  std::vector<uint8_t> code;
  Encoder enc(code);
  enc.branch(Op::kJne, -32);
  Instr ins = decode(code);
  // target = addr + length + rel
  EXPECT_EQ(ins.target(0x1000), 0x1000u + 5 - 32);
}

TEST(Isa, PatchRel32) {
  std::vector<uint8_t> code;
  Encoder enc(code);
  size_t at = enc.branch(Op::kJmp, 0);
  enc.patch_rel32(at, 123);
  EXPECT_EQ(decode(code).imm, 123);

  size_t lea_at = enc.lea(4, 0);
  enc.patch_rel32(lea_at, -9);
  Instr lea = decode(std::span(code).subspan(5));
  EXPECT_EQ(lea.imm, -9);

  size_t nop_at = enc.nop();
  EXPECT_THROW(enc.patch_rel32(nop_at, 1), StateError);
}

TEST(Isa, TerminatorClassification) {
  EXPECT_TRUE(is_terminator(Op::kJmp));
  EXPECT_TRUE(is_terminator(Op::kCall));
  EXPECT_TRUE(is_terminator(Op::kRet));
  EXPECT_TRUE(is_terminator(Op::kSyscall));
  EXPECT_TRUE(is_terminator(Op::kCallR));
  EXPECT_TRUE(is_terminator(Op::kJmpR));
  EXPECT_FALSE(is_terminator(Op::kMovRI));
  EXPECT_FALSE(is_terminator(Op::kCmpRR));
  EXPECT_FALSE(is_terminator(Op::kLea));
}

TEST(Isa, CondBranchClassification) {
  EXPECT_TRUE(is_cond_branch(Op::kJe));
  EXPECT_TRUE(is_cond_branch(Op::kJae));
  EXPECT_FALSE(is_cond_branch(Op::kJmp));
  EXPECT_FALSE(is_cond_branch(Op::kCall));
}

TEST(Isa, DirectTransferClassification) {
  EXPECT_TRUE(is_direct_transfer(Op::kJmp));
  EXPECT_TRUE(is_direct_transfer(Op::kCall));
  EXPECT_TRUE(is_direct_transfer(Op::kJle));
  EXPECT_FALSE(is_direct_transfer(Op::kCallR));
  EXPECT_FALSE(is_direct_transfer(Op::kRet));
}

// Property sweep: every opcode encodes to its table length and decodes back
// to the same opcode.
class OpcodeRoundtrip : public ::testing::TestWithParam<uint8_t> {};

TEST_P(OpcodeRoundtrip, LengthAndOpcodeAgree) {
  uint8_t byte = GetParam();
  if (!valid_opcode(byte)) GTEST_SKIP();
  std::vector<uint8_t> code(instr_length(byte), 0);
  code[0] = byte;
  auto ins = try_decode(code);
  ASSERT_TRUE(ins.has_value());
  EXPECT_EQ(static_cast<uint8_t>(ins->op), byte);
  EXPECT_EQ(ins->length, code.size());
  // One byte short must fail for every multi-byte instruction.
  if (code.size() > 1) {
    EXPECT_FALSE(try_decode({code.data(), code.size() - 1}).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodeBytes, OpcodeRoundtrip,
                         ::testing::Range<uint8_t>(0x00, 0xFF));

TEST(Disasm, FormatsCommonInstructions) {
  std::vector<uint8_t> code;
  Encoder enc(code);
  enc.mov_ri(1, 0x2a);
  enc.cmp_rr(1, 2);
  enc.branch(Op::kJne, -14);
  enc.trap();
  std::string text = disassemble_text(code, 0x400000);
  EXPECT_NE(text.find("mov r1, 0x2a"), std::string::npos);
  EXPECT_NE(text.find("cmp r1, r2"), std::string::npos);
  EXPECT_NE(text.find("jne"), std::string::npos);
  EXPECT_NE(text.find("trap"), std::string::npos);
}

TEST(Disasm, SpNameUsedForR15) {
  std::vector<uint8_t> code;
  Encoder enc(code);
  enc.push(15);
  std::string text = disassemble_text(code, 0);
  EXPECT_NE(text.find("push sp"), std::string::npos);
}

TEST(Disasm, InvalidBytesBecomeByteLines) {
  std::vector<uint8_t> code{0x00, 0x90};
  auto lines = disassemble(code, 0x100);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_FALSE(lines[0].valid);
  EXPECT_EQ(lines[0].raw_byte, 0x00);
  EXPECT_TRUE(lines[1].valid);
  EXPECT_EQ(lines[1].instr.op, Op::kNop);
  std::string text = disassemble_text(code, 0x100);
  EXPECT_NE(text.find(".byte 0x00"), std::string::npos);
}

TEST(Disasm, SweepCoversAllBytes) {
  // Linear sweep must consume exactly the input length.
  std::vector<uint8_t> code;
  Encoder enc(code);
  enc.mov_ri(0, 1);
  enc.add_ri(0, 2);
  enc.ret();
  auto lines = disassemble(code, 0);
  uint64_t covered = 0;
  for (const auto& l : lines) covered += l.valid ? l.instr.length : 1;
  EXPECT_EQ(covered, code.size());
}

}  // namespace
}  // namespace dynacut::isa
