// Tests for the MELF binary format, the ProgramBuilder assembler DSL and
// the linker: layout, symbols, fixups, PLT/GOT generation, (de)serialization.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "isa/disasm.hpp"
#include "melf/binary.hpp"
#include "melf/builder.hpp"

namespace dynacut::melf {
namespace {

Binary tiny_program() {
  ProgramBuilder b("tiny");
  auto& main = b.func("main");
  main.mov_ri(1, 5)
      .cmp_ri(1, 5)
      .je("eq")
      .mov_ri(0, 1)
      .ret()
      .label("eq")
      .mov_ri(0, 0)
      .ret();
  b.set_entry("main");
  return b.link();
}

TEST(Builder, TinyProgramLinks) {
  Binary bin = tiny_program();
  EXPECT_EQ(bin.name, "tiny");
  const Symbol* main = bin.find_symbol("main");
  ASSERT_NE(main, nullptr);
  EXPECT_TRUE(main->is_function);
  EXPECT_EQ(bin.entry, main->value);
  EXPECT_GT(main->size, 0u);
}

TEST(Builder, LocalLabelBranchResolves) {
  Binary bin = tiny_program();
  const Section* text = bin.section(SectionKind::kText);
  ASSERT_NE(text, nullptr);
  // Find the je and check its target lands on the "eq" label instruction.
  auto lines = isa::disassemble(text->bytes, 0);
  uint64_t je_target = 0;
  for (const auto& l : lines) {
    if (l.valid && l.instr.op == isa::Op::kJe) {
      je_target = l.instr.target(l.addr);
    }
  }
  ASSERT_NE(je_target, 0u);
  // The instruction at the target must be mov r0, 0.
  bool found = false;
  for (const auto& l : lines) {
    if (l.addr == je_target) {
      EXPECT_EQ(l.instr.op, isa::Op::kMovRI);
      EXPECT_EQ(l.instr.imm, 0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Builder, DuplicateLabelThrows) {
  ProgramBuilder b("dup");
  auto& f = b.func("f");
  f.label("x");
  EXPECT_THROW(f.label("x"), GuestError);
}

TEST(Builder, UnresolvedLabelThrowsAtLink) {
  ProgramBuilder b("bad");
  b.func("f").jmp("nowhere").ret();
  EXPECT_THROW(b.link(), GuestError);
}

TEST(Builder, UnresolvedSymbolThrowsAtLink) {
  ProgramBuilder b("bad");
  b.func("f").call("missing_function").ret();
  EXPECT_THROW(b.link(), GuestError);
}

TEST(Builder, DuplicateFunctionSymbolThrows) {
  ProgramBuilder b("dup");
  b.func("f").ret();
  b.rodata_str("f", "clash");
  EXPECT_THROW(b.link(), GuestError);
}

TEST(Builder, LinkTwiceThrows) {
  ProgramBuilder b("twice");
  b.func("f").ret();
  b.link();
  EXPECT_THROW(b.link(), StateError);
}

TEST(Builder, CrossFunctionCall) {
  ProgramBuilder b("calls");
  b.func("helper").mov_ri(0, 99).ret();
  b.func("main").call("helper").ret();
  b.set_entry("main");
  Binary bin = b.link();

  const Symbol* helper = bin.find_symbol("helper");
  const Symbol* main = bin.find_symbol("main");
  ASSERT_NE(helper, nullptr);
  ASSERT_NE(main, nullptr);
  const Section* text = bin.section(SectionKind::kText);
  auto call =
      isa::decode(std::span(text->bytes).subspan(main->value));
  EXPECT_EQ(call.op, isa::Op::kCall);
  EXPECT_EQ(call.target(main->value), helper->value);
}

TEST(Builder, SectionLayoutIsPageAlignedAndOrdered) {
  ProgramBuilder b("layout");
  b.func("main").ret();
  b.import("strcmp");
  b.rodata_str("msg", "hello");
  b.data_u64("counter", 7);
  b.bss("buffer", 256);
  Binary bin = b.link();

  uint64_t prev_end = 0;
  for (auto kind :
       {SectionKind::kText, SectionKind::kPlt, SectionKind::kRodata,
        SectionKind::kData, SectionKind::kGot, SectionKind::kBss}) {
    const Section* s = bin.section(kind);
    ASSERT_NE(s, nullptr) << section_name(kind);
    EXPECT_EQ(s->offset % kPageSize, 0u) << section_name(kind);
    EXPECT_GE(s->offset, prev_end) << section_name(kind);
    prev_end = s->offset + s->size;
  }
  EXPECT_EQ(bin.image_size() % kPageSize, 0u);
  EXPECT_GE(bin.image_size(), prev_end);
}

TEST(Builder, BssHasNoBytesButHasSize) {
  ProgramBuilder b("bss");
  b.func("main").ret();
  b.bss("table", 10000);
  Binary bin = b.link();
  const Section* bss = bin.section(SectionKind::kBss);
  ASSERT_NE(bss, nullptr);
  EXPECT_EQ(bss->size, 10000u);
  EXPECT_TRUE(bss->bytes.empty());
}

TEST(Builder, PltStubShape) {
  ProgramBuilder b("plt");
  b.func("main").call_import("strlen").ret();
  Binary bin = b.link();

  ASSERT_EQ(bin.imports.size(), 1u);
  EXPECT_EQ(bin.imports[0], "strlen");

  auto stub_off = bin.plt_stub_offset("strlen");
  ASSERT_TRUE(stub_off.has_value());
  const Section* plt = bin.section(SectionKind::kPlt);
  ASSERT_NE(plt, nullptr);
  EXPECT_EQ(*stub_off, plt->offset);

  // Stub = lea r11, <got slot>; load r11, [r11+0]; jmpr r11.
  std::span<const uint8_t> stub(plt->bytes);
  auto lea = isa::decode(stub);
  EXPECT_EQ(lea.op, isa::Op::kLea);
  EXPECT_EQ(lea.r1, 11);
  EXPECT_EQ(lea.target(*stub_off), bin.got_slot_offset(0));
  auto load = isa::decode(stub.subspan(lea.length));
  EXPECT_EQ(load.op, isa::Op::kLoad);
  auto jmpr = isa::decode(stub.subspan(lea.length + load.length));
  EXPECT_EQ(jmpr.op, isa::Op::kJmpR);
  EXPECT_EQ(jmpr.r1, 11);
}

TEST(Builder, GotEntryRelocationPerImport) {
  ProgramBuilder b("got");
  b.func("main").call_import("strlen").call_import("strcmp").ret();
  Binary bin = b.link();
  int got_relocs = 0;
  for (const auto& r : bin.relocs) {
    if (r.kind == RelocKind::kGotEntry) {
      ++got_relocs;
      EXPECT_TRUE(r.symbol == "strlen" || r.symbol == "strcmp");
    }
  }
  EXPECT_EQ(got_relocs, 2);
}

TEST(Builder, ImportDeduplicated) {
  ProgramBuilder b("dedup");
  b.func("a").call_import("strlen").ret();
  b.func("b").call_import("strlen").ret();
  Binary bin = b.link();
  EXPECT_EQ(bin.imports.size(), 1u);
}

TEST(Builder, MovSymEmitsAbs64Reloc) {
  ProgramBuilder b("abs");
  b.rodata_str("msg", "hi");
  b.func("main").mov_sym(1, "msg").ret();
  Binary bin = b.link();
  const Symbol* msg = bin.find_symbol("msg");
  ASSERT_NE(msg, nullptr);
  bool found = false;
  for (const auto& r : bin.relocs) {
    if (r.kind == RelocKind::kAbs64 &&
        r.addend == static_cast<int64_t>(msg->value)) {
      found = true;
      // Patch site is inside main's mov imm64 field.
      const Symbol* main = bin.find_symbol("main");
      EXPECT_EQ(r.offset, main->value + 2);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Builder, DataPtrEmitsResolvedReloc) {
  ProgramBuilder b("ptr");
  b.func("target").ret();
  b.data_ptr("slot", "target");
  Binary bin = b.link();
  const Symbol* target = bin.find_symbol("target");
  const Symbol* slot = bin.find_symbol("slot");
  ASSERT_NE(target, nullptr);
  ASSERT_NE(slot, nullptr);
  bool found = false;
  for (const auto& r : bin.relocs) {
    if (r.kind == RelocKind::kAbs64 && r.offset == slot->value) {
      EXPECT_EQ(r.addend, static_cast<int64_t>(target->value));
      EXPECT_TRUE(r.symbol.empty());  // resolved at link time
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Builder, LeaSymIsPicRelative) {
  ProgramBuilder b("pic");
  b.rodata_str("msg", "hi");
  b.func("main").lea_sym(1, "msg").ret();
  Binary bin = b.link();
  const Symbol* main = bin.find_symbol("main");
  const Symbol* msg = bin.find_symbol("msg");
  const Section* text = bin.section(SectionKind::kText);
  auto lea = isa::decode(std::span(text->bytes).subspan(main->value));
  EXPECT_EQ(lea.op, isa::Op::kLea);
  EXPECT_EQ(lea.target(main->value), msg->value);
  // No relocation needed for IP-relative addressing.
  for (const auto& r : bin.relocs) {
    EXPECT_NE(r.kind, RelocKind::kAbs64);
  }
}

TEST(Builder, FunctionsAre16ByteAligned) {
  ProgramBuilder b("align");
  b.func("a").nop().ret();  // 2 bytes
  b.func("c").ret();
  Binary bin = b.link();
  for (const auto& s : bin.symbols) {
    if (s.is_function) {
      EXPECT_EQ(s.value % 16, 0u) << s.name;
    }
  }
}

TEST(Builder, SymbolContaining) {
  ProgramBuilder b("contain");
  b.func("a").nop().nop().ret();
  b.func("b").ret();
  Binary bin = b.link();
  const Symbol* a = bin.find_symbol("a");
  const Symbol* b_sym = bin.find_symbol("b");
  EXPECT_EQ(bin.symbol_containing(a->value + 1), a);
  EXPECT_EQ(bin.symbol_containing(b_sym->value), b_sym);
  EXPECT_EQ(bin.symbol_containing(0xffffff), nullptr);
}

TEST(Format, EncodeDecodeRoundtrip) {
  ProgramBuilder b("round");
  b.func("helper").mov_ri(0, 3).ret();
  b.func("main").call("helper").call_import("write").ret();
  b.rodata_str("greeting", "hello world");
  b.data_u64("counter", 42);
  b.bss("scratch", 512);
  b.set_entry("main");
  Binary bin = b.link();

  std::vector<uint8_t> encoded = bin.encode();
  Binary back = Binary::decode(encoded);

  EXPECT_EQ(back.name, bin.name);
  EXPECT_EQ(back.entry, bin.entry);
  EXPECT_EQ(back.imports, bin.imports);
  ASSERT_EQ(back.sections.size(), bin.sections.size());
  for (size_t i = 0; i < bin.sections.size(); ++i) {
    EXPECT_EQ(back.sections[i].kind, bin.sections[i].kind);
    EXPECT_EQ(back.sections[i].offset, bin.sections[i].offset);
    EXPECT_EQ(back.sections[i].size, bin.sections[i].size);
    EXPECT_EQ(back.sections[i].bytes, bin.sections[i].bytes);
  }
  ASSERT_EQ(back.symbols.size(), bin.symbols.size());
  for (size_t i = 0; i < bin.symbols.size(); ++i) {
    EXPECT_EQ(back.symbols[i].name, bin.symbols[i].name);
    EXPECT_EQ(back.symbols[i].value, bin.symbols[i].value);
  }
  EXPECT_EQ(back.relocs.size(), bin.relocs.size());
}

TEST(Format, DecodeRejectsGarbage) {
  std::vector<uint8_t> junk{1, 2, 3, 4, 5};
  EXPECT_THROW(Binary::decode(junk), DecodeError);
}

TEST(Format, DecodeRejectsTrailingBytes) {
  Binary bin = tiny_program();
  auto bytes = bin.encode();
  bytes.push_back(0);
  EXPECT_THROW(Binary::decode(bytes), DecodeError);
}

TEST(Format, SectionProtections) {
  EXPECT_EQ(section_prot(SectionKind::kText), kProtRead | kProtExec);
  EXPECT_EQ(section_prot(SectionKind::kPlt), kProtRead | kProtExec);
  EXPECT_EQ(section_prot(SectionKind::kRodata), kProtRead);
  EXPECT_EQ(section_prot(SectionKind::kData), kProtRead | kProtWrite);
  EXPECT_EQ(section_prot(SectionKind::kGot), kProtRead | kProtWrite);
  EXPECT_EQ(section_prot(SectionKind::kBss), kProtRead | kProtWrite);
}

}  // namespace
}  // namespace dynacut::melf
