// Tests for the observability layer (DESIGN.md §9): event bus semantics
// (stamping, transactions, retraction-on-abort, re-entrant sinks), JSON
// validity of every serialized surface, registry determinism, the timeline
// recorder, and the CutRequest-driven DynaCut integration — including the
// fault-injection matrix proving aborted customizations are invisible to
// observers.
#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/coverage.hpp"
#include "apps/libc.hpp"
#include "core/dynacut.hpp"
#include "core/handler_lib.hpp"
#include "core/txn.hpp"
#include "obs/bus.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/sinks.hpp"
#include "obs/timeline.hpp"
#include "os/os.hpp"
#include "test_guests.hpp"
#include "trace/trace.hpp"

namespace dynacut {
namespace {

using core::CustomizeError;
using core::CustomizeReport;
using core::CutRequest;
using core::DynaCut;
using core::FaultPlan;
using core::FaultStage;
using core::FeatureSpec;
using core::RemovalPolicy;
using core::TrapPolicy;
using obs::Attr;
using obs::Event;
using obs::EventBus;
using obs::JsonlSink;
using obs::Registry;
using obs::RingBufferSink;
using obs::TimelineRecorder;
namespace ev = obs::ev;

// --- JSON validator ------------------------------------------------------

TEST(JsonValid, AcceptsCanonicalDocuments) {
  EXPECT_TRUE(obs::json_valid("{}", nullptr));
  EXPECT_TRUE(obs::json_valid("[]", nullptr));
  EXPECT_TRUE(obs::json_valid("{\"a\":1,\"b\":[true,false,null]}", nullptr));
  EXPECT_TRUE(obs::json_valid("{\"s\":\"x\\n\\\"\\u00e9\"}", nullptr));
  EXPECT_TRUE(obs::json_valid("-1.5e-3", nullptr));
  EXPECT_TRUE(obs::json_valid("\"just a string\"", nullptr));
}

TEST(JsonValid, RejectsMalformedDocuments) {
  std::string why;
  EXPECT_FALSE(obs::json_valid("", &why));
  EXPECT_FALSE(obs::json_valid("{", nullptr));
  EXPECT_FALSE(obs::json_valid("{\"a\":1,}", nullptr));
  EXPECT_FALSE(obs::json_valid("{\"a\" 1}", nullptr));
  EXPECT_FALSE(obs::json_valid("[1,2] trailing", nullptr));
  EXPECT_FALSE(obs::json_valid("{\"a\":01}", nullptr));
  EXPECT_FALSE(obs::json_valid("\"bad escape \\q\"", nullptr));
  EXPECT_FALSE(obs::json_valid("nan", nullptr));
  EXPECT_FALSE(obs::json_valid("'single'", nullptr));
}

TEST(JsonValid, RejectsExcessiveNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(obs::json_valid(deep, nullptr));
  std::string ok(64, '[');
  ok += std::string(64, ']');
  EXPECT_TRUE(obs::json_valid(ok, nullptr));
}

// --- Event ---------------------------------------------------------------

TEST(EventTest, JsonHasStableKeyOrderAndEscaping) {
  Event e(ev::kRewritePatch, 7);
  e.seq = 3;
  e.vclock = 42;
  e.txn = 2;
  e.with("addr", uint64_t{4096}).with("kind", "a\"b");
  EXPECT_EQ(e.json(),
            "{\"seq\":3,\"t\":42,\"type\":\"rewrite.patch\",\"pid\":7,"
            "\"txn\":2,\"addr\":4096,\"kind\":\"a\\\"b\"}");
  EXPECT_TRUE(obs::json_valid(e.json(), nullptr));
}

TEST(EventTest, AttrAccessors) {
  Event e(ev::kTrapHit);
  e.with("addr", uint64_t{10}).with("action", "kill");
  EXPECT_EQ(e.attr_u64("addr"), 10u);
  EXPECT_EQ(e.attr_str("action"), "kill");
  EXPECT_EQ(e.attr_u64("missing", 99), 99u);
  EXPECT_EQ(e.attr_str("addr"), "");  // numeric attr is not a string
}

// --- EventBus ------------------------------------------------------------

TEST(EventBus, StampsSequenceAndClock) {
  EventBus bus;
  uint64_t t = 100;
  bus.set_clock([&] { return t; });
  RingBufferSink ring;
  bus.add_sink(&ring);
  bus.emit(Event(ev::kWarning));
  t = 200;
  bus.emit(Event(ev::kWarning));
  ASSERT_EQ(ring.events().size(), 2u);
  EXPECT_EQ(ring.events()[0].seq, 1u);
  EXPECT_EQ(ring.events()[0].vclock, 100u);
  EXPECT_EQ(ring.events()[1].seq, 2u);
  EXPECT_EQ(ring.events()[1].vclock, 200u);
}

TEST(EventBus, AnnotatorEnrichesBeforeDelivery) {
  EventBus bus;
  bus.set_annotator([](Event& e) {
    if (e.type == ev::kTrapHit) e.with("feature", "F");
  });
  RingBufferSink ring;
  bus.add_sink(&ring);
  bus.emit(Event(ev::kTrapHit));
  bus.emit(Event(ev::kWarning));
  EXPECT_EQ(ring.events()[0].attr_str("feature"), "F");
  EXPECT_EQ(ring.events()[1].find("feature"), nullptr);
}

TEST(EventBus, CommitFlushesStagedInOrderWithOriginalStamps) {
  EventBus bus;
  uint64_t t = 10;
  bus.set_clock([&] { return t; });
  RingBufferSink ring;
  bus.add_sink(&ring);

  uint64_t id = bus.begin_txn("feat", {Attr::s("action", "disable")});
  EXPECT_TRUE(bus.in_txn());
  EXPECT_EQ(bus.current_txn(), id);
  t = 20;
  bus.emit(Event(ev::kCheckpointDump, 1));
  t = 30;
  bus.emit(Event(ev::kRewritePatch, 1));
  // Only the stage marker is visible while the transaction is open.
  EXPECT_EQ(ring.events().size(), 1u);
  EXPECT_EQ(ring.events()[0].type, ev::kTxnStage);

  t = 40;
  size_t flushed = bus.commit_txn({Attr::u("blocks", 2)});
  EXPECT_EQ(flushed, 2u);
  EXPECT_FALSE(bus.in_txn());
  ASSERT_EQ(ring.events().size(), 4u);
  EXPECT_EQ(ring.events()[1].type, ev::kCheckpointDump);
  EXPECT_EQ(ring.events()[1].vclock, 20u);  // original stamp, not flush time
  EXPECT_EQ(ring.events()[1].txn, id);
  EXPECT_EQ(ring.events()[2].type, ev::kRewritePatch);
  EXPECT_EQ(ring.events()[2].vclock, 30u);
  EXPECT_EQ(ring.events()[3].type, ev::kTxnCommit);
  EXPECT_EQ(ring.events()[3].attr_str("label"), "feat");
  EXPECT_EQ(ring.events()[3].attr_u64("staged"), 2u);
  EXPECT_EQ(ring.events()[3].attr_u64("blocks"), 2u);
}

TEST(EventBus, AbortRetractsStagedEvents) {
  EventBus bus;
  RingBufferSink ring;
  bus.add_sink(&ring);

  bus.begin_txn("feat");
  bus.emit(Event(ev::kRewritePatch, 1));
  bus.emit(Event(ev::kRewriteWipe, 1));
  bus.abort_txn("injected fault");

  EXPECT_EQ(ring.count(ev::kRewritePatch), 0u);
  EXPECT_EQ(ring.count(ev::kRewriteWipe), 0u);
  ASSERT_EQ(ring.events().size(), 3u);  // stage, abort, rollback
  EXPECT_EQ(ring.events()[1].type, ev::kTxnAbort);
  EXPECT_EQ(ring.events()[1].attr_str("why"), "injected fault");
  EXPECT_EQ(ring.events()[1].attr_u64("retracted"), 2u);
  EXPECT_EQ(ring.events()[2].type, ev::kTxnRollback);
  EXPECT_EQ(bus.events_retracted(), 2u);

  // Blind abort with no open transaction is a no-op.
  bus.abort_txn("again");
  EXPECT_EQ(ring.events().size(), 3u);
}

TEST(EventBus, CommitWithNoTxnIsNoop) {
  EventBus bus;
  EXPECT_EQ(bus.commit_txn(), 0u);
}

namespace {
/// A sink that emits a follow-up event when it sees a trap.hit.
struct ReactiveSink : obs::Sink {
  EventBus& bus;
  explicit ReactiveSink(EventBus& b) : bus(b) {}
  void on_event(const Event& e) override {
    if (e.type == ev::kTrapHit) {
      bus.emit(Event(ev::kWarning).with("from", "sink"));
    }
  }
};
}  // namespace

TEST(EventBus, ReentrantEmitFromSinkIsQueued) {
  EventBus bus;
  ReactiveSink reactive(bus);
  RingBufferSink ring;
  bus.add_sink(&reactive);
  bus.add_sink(&ring);
  bus.emit(Event(ev::kTrapHit));
  ASSERT_EQ(ring.events().size(), 2u);
  EXPECT_EQ(ring.events()[0].type, ev::kTrapHit);
  EXPECT_EQ(ring.events()[1].type, ev::kWarning);
  EXPECT_GT(ring.events()[1].seq, ring.events()[0].seq);
}

// --- Sinks ---------------------------------------------------------------

TEST(Sinks, RingBufferEvictsOldestBeyondCapacity) {
  RingBufferSink ring(2);
  EventBus bus;
  bus.add_sink(&ring);
  bus.emit(Event("a"));
  bus.emit(Event("b"));
  bus.emit(Event("c"));
  EXPECT_EQ(ring.total(), 3u);
  ASSERT_EQ(ring.events().size(), 2u);
  EXPECT_EQ(ring.events()[0].type, "b");
  EXPECT_EQ(ring.events()[1].type, "c");
}

TEST(Sinks, JsonlWritesOneValidLinePerEvent) {
  std::ostringstream out;
  JsonlSink sink(out);
  EventBus bus;
  bus.add_sink(&sink);
  bus.emit(Event(ev::kTrapHit, 3).with("addr", uint64_t{0x1000}));
  bus.emit(Event(ev::kWarning).with("what", "w"));
  EXPECT_EQ(sink.lines(), 2u);
  std::istringstream in(out.str());
  std::string line;
  size_t n = 0;
  while (std::getline(in, line)) {
    ++n;
    EXPECT_TRUE(obs::json_valid(line, nullptr)) << line;
  }
  EXPECT_EQ(n, 2u);
}

// --- Registry ------------------------------------------------------------

TEST(RegistryTest, HistogramPowerOfTwoBuckets) {
  obs::Histogram h;
  h.observe(0);     // bucket 0
  h.observe(1);     // bucket 1
  h.observe(2);     // bucket 2
  h.observe(3);     // bucket 2
  h.observe(1024);  // bucket 11
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.sum, 1030u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 1024u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[11], 1u);
  EXPECT_TRUE(obs::json_valid(h.json(), nullptr));
}

TEST(RegistryTest, SnapshotIsSortedDeterministicValidJson) {
  Registry a;
  a.add("z.counter", 3);
  a.add("a.counter");
  a.set_gauge("live_pct", 62.5);
  a.histogram("lat").observe(7);

  Registry b;  // same content, charged in a different order
  b.histogram("lat").observe(7);
  b.set_gauge("live_pct", 62.5);
  b.add("a.counter");
  b.add("z.counter", 2);
  b.add("z.counter");

  EXPECT_EQ(a.snapshot_json(), b.snapshot_json());
  EXPECT_TRUE(obs::json_valid(a.snapshot_json(), nullptr));
  EXPECT_LT(a.snapshot_json().find("a.counter"),
            a.snapshot_json().find("z.counter"));
  EXPECT_EQ(a.counter("z.counter"), 3u);
  EXPECT_EQ(a.counter("never"), 0u);
}

// --- TimelineRecorder ----------------------------------------------------

TEST(Timeline, DerivesTogglesFromCommittedTxns) {
  EventBus bus;
  uint64_t t = 5;
  bus.set_clock([&] { return t; });
  TimelineRecorder rec(bus);

  bus.begin_txn("SET", {Attr::s("action", "disable")});
  t = 6;
  bus.commit_txn({Attr::s("action", "disable")});
  EXPECT_EQ(rec.disabled_features(), std::vector<std::string>{"SET"});

  // An aborted transaction adds no toggle.
  bus.begin_txn("GET", {Attr::s("action", "disable")});
  bus.abort_txn("fault");
  EXPECT_EQ(rec.toggles().size(), 1u);
  EXPECT_EQ(rec.disabled_features(), std::vector<std::string>{"SET"});

  t = 9;
  bus.begin_txn("SET", {Attr::s("action", "restore")});
  bus.commit_txn({Attr::s("action", "restore")});
  ASSERT_EQ(rec.toggles().size(), 2u);
  EXPECT_EQ(rec.toggles()[0].vclock, 6u);
  EXPECT_TRUE(rec.toggles()[0].disabled);
  EXPECT_FALSE(rec.toggles()[1].disabled);
  EXPECT_TRUE(rec.disabled_features().empty());

  rec.set_live_probe([] { return 42.0; });
  t = 11;
  const TimelineRecorder::Sample& s = rec.sample();
  EXPECT_EQ(s.vclock, 11u);
  EXPECT_DOUBLE_EQ(s.live_pct, 42.0);
  EXPECT_TRUE(obs::json_valid(rec.json(), nullptr));
}

// --- DynaCut integration -------------------------------------------------

/// Boots toysrv, discovers feature B via trace-diff (as in dynacut_test),
/// and wires a full obs stack: bus + ring sink + registry + recorder.
struct ObsPipeline {
  os::Os vos;
  int pid = 0;
  std::shared_ptr<const melf::Binary> bin;
  FeatureSpec feature_b;
  os::HostConn conn;
  EventBus bus;
  RingBufferSink ring{1 << 16};
  Registry reg;
  TimelineRecorder recorder{bus};

  ObsPipeline() {
    bin = testing::build_toysrv();
    auto trace_requests = [&](const std::string& reqs) {
      os::Os prof;
      trace::Tracer tracer(prof);
      int p = prof.spawn(testing::build_toysrv(), {apps::build_libc()});
      prof.run();
      auto c = prof.connect(80);
      c.send(reqs);
      prof.run();
      return tracer.dump(p);
    };
    trace::TraceLog undesired = trace_requests("A\nB\nQ\n");
    trace::TraceLog wanted = trace_requests("A\nA\nQ\n");
    feature_b.name = "B";
    feature_b.blocks =
        analysis::feature_diff({undesired}, {wanted}, "toysrv").blocks();
    feature_b.redirect_module = "toysrv";
    feature_b.redirect_offset = bin->find_symbol("dispatch_err")->value;

    pid = vos.spawn(bin, {apps::build_libc()});
    vos.run();
    conn = vos.connect(80);
    bus.add_sink(&ring);
    vos.set_event_bus(&bus);
  }

  std::string request(const std::string& line) {
    conn.send(line);
    vos.run();
    return conn.recv_all();
  }

  size_t count_prefix(const char* prefix) const {
    size_t n = 0;
    for (const auto& e : ring.events()) {
      if (e.type.rfind(prefix, 0) == 0) ++n;
    }
    return n;
  }
};

TEST(ObsIntegration, CommittedDisableEmitsBracketedTrace) {
  ObsPipeline px;
  DynaCut dc(px.vos, px.pid, {}, core::CheckMode::kOff);
  dc.set_observer(&px.bus, &px.reg);

  CustomizeReport rep =
      dc.disable_feature({.feature = px.feature_b,
                          .removal = RemovalPolicy::kBlockFirstByte,
                          .trap = TrapPolicy::kRedirect});

  // Bracketing: txn.stage first, txn.commit last, staged events between.
  ASSERT_GE(px.ring.events().size(), 4u);
  EXPECT_EQ(px.ring.events().front().type, ev::kTxnStage);
  EXPECT_EQ(px.ring.events().back().type, ev::kTxnCommit);
  EXPECT_EQ(px.ring.count(ev::kTxnCommit), 1u);
  EXPECT_EQ(px.ring.count(ev::kTxnAbort), 0u);
  EXPECT_GE(px.ring.count(ev::kCheckpointDump), 1u);
  EXPECT_GE(px.ring.count(ev::kCheckpointRestore), 1u);
  EXPECT_GE(px.ring.count(ev::kRewritePatch), 1u);
  EXPECT_GE(px.ring.count(ev::kRewriteInject), 1u);

  // Every staged event carries the transaction id of the bracket.
  uint64_t txn = px.ring.events().front().seq;
  for (const auto& e : px.ring.events()) {
    if (e.type == ev::kTxnStage) continue;
    EXPECT_EQ(e.txn, txn) << e.type;
  }

  // The report's obs summary matches the bus's view.
  EXPECT_EQ(rep.obs.label, "B");
  EXPECT_EQ(rep.obs.txn, txn);
  EXPECT_GT(rep.obs.events, 0u);
  const Event* commit = px.ring.of_type(ev::kTxnCommit)[0];
  EXPECT_EQ(commit->attr_u64("staged"), rep.obs.events);
  EXPECT_EQ(commit->attr_u64("blocks_patched"), rep.edits.blocks_patched);

  // Success metrics charged.
  EXPECT_EQ(px.reg.counter("txn.commits"), 1u);
  EXPECT_EQ(px.reg.counter("cut.blocks_patched"), rep.edits.blocks_patched);
  EXPECT_EQ(px.reg.find_histogram("cut.stage_ns")->count, 1u);
}

TEST(ObsIntegration, PreflightEmitsCutcheckFindings) {
  ObsPipeline px;
  DynaCut dc(px.vos, px.pid);
  dc.set_observer(&px.bus, &px.reg);
  auto report = dc.preflight({.feature = px.feature_b,
                              .removal = RemovalPolicy::kBlockFirstByte,
                              .trap = TrapPolicy::kRedirect});
  EXPECT_EQ(px.ring.count(ev::kCutcheckFinding), report.diags.size());
  if (!report.diags.empty()) {
    const Event* f = px.ring.of_type(ev::kCutcheckFinding)[0];
    EXPECT_EQ(f->attr_str("feature"), "B");
    EXPECT_FALSE(f->attr_str("rule").empty());
    EXPECT_FALSE(f->attr_str("severity").empty());
  }
}

TEST(ObsIntegration, TrapHitsAreAnnotatedWithFeatureAndPolicy) {
  ObsPipeline px;
  DynaCut dc(px.vos, px.pid);
  dc.set_observer(&px.bus, &px.reg);
  dc.disable_feature({.feature = px.feature_b,
                      .removal = RemovalPolicy::kBlockFirstByte,
                      .trap = TrapPolicy::kRedirect});

  EXPECT_EQ(px.request("B\n"), "err\n");
  ASSERT_GE(px.ring.count(ev::kTrapHit), 1u);
  const Event* hit = px.ring.of_type(ev::kTrapHit)[0];
  EXPECT_EQ(hit->pid, px.pid);
  EXPECT_EQ(hit->attr_str("feature"), "B");
  EXPECT_EQ(hit->attr_str("policy"), "redirect");
  EXPECT_EQ(hit->attr_str("action"), "handler");
  EXPECT_GT(hit->attr_u64("addr"), 0u);
  EXPECT_EQ(px.reg.counter("trap.hits"), px.ring.count(ev::kTrapHit));
  EXPECT_EQ(px.reg.counter("trap.hits.B"), px.ring.count(ev::kTrapHit));

  // After restore the trap sites are forgotten: no stale annotation.
  dc.restore_feature("B");
  EXPECT_EQ(px.request("B\n"), "beta\n");
}

TEST(ObsIntegration, AbortedTxnIsInvisibleToObservers) {
  // First pass: count the fault points of every stage for this scenario.
  std::array<size_t, kNumFaultStages> totals{};
  {
    ObsPipeline px;
    DynaCut dc(px.vos, px.pid, {}, core::CheckMode::kOff);
    FaultPlan counter;
    dc.set_fault_plan(&counter);
    dc.disable_feature({.feature = px.feature_b,
                        .removal = RemovalPolicy::kBlockFirstByte,
                        .trap = TrapPolicy::kRedirect});
    for (size_t s = 0; s < kNumFaultStages; ++s) {
      totals[s] = counter.count(static_cast<FaultStage>(s));
    }
  }

  // Matrix: abort at the first fault point of every stage that has one;
  // observers must see txn.abort + txn.rollback and nothing else.
  for (size_t si = 0; si < kNumFaultStages; ++si) {
    if (totals[si] == 0) continue;
    const auto fstage = static_cast<FaultStage>(si);
    SCOPED_TRACE(fault_stage_name(fstage));

    ObsPipeline px;
    DynaCut dc(px.vos, px.pid, {}, core::CheckMode::kOff);
    dc.set_observer(&px.bus, &px.reg);
    FaultPlan plan = FaultPlan::fail_at(fstage, 0);
    dc.set_fault_plan(&plan);
    EXPECT_THROW(
        dc.disable_feature({.feature = px.feature_b,
                            .removal = RemovalPolicy::kBlockFirstByte,
                            .trap = TrapPolicy::kRedirect}),
        CustomizeError);

    EXPECT_EQ(px.ring.count(ev::kTxnStage), 1u);
    EXPECT_EQ(px.ring.count(ev::kTxnAbort), 1u);
    EXPECT_EQ(px.ring.count(ev::kTxnRollback), 1u);
    EXPECT_EQ(px.ring.count(ev::kTxnCommit), 0u);
    // No staged work leaked to sinks: observers never saw the rolled-back
    // customization as applied.
    EXPECT_EQ(px.count_prefix("rewrite."), 0u);
    EXPECT_EQ(px.count_prefix("checkpoint."), 0u);
    // Success counters not charged; the abort is.
    EXPECT_EQ(px.reg.counter("txn.commits"), 0u);
    EXPECT_EQ(px.reg.counter("cut.blocks_patched"), 0u);
    EXPECT_EQ(px.reg.counter("txn.aborts"), 1u);
    // The recorder's disabled set never flickered.
    EXPECT_TRUE(px.recorder.disabled_features().empty());
    EXPECT_TRUE(px.recorder.toggles().empty());

    // A clean retry after the abort produces a normal committed trace.
    dc.set_fault_plan(nullptr);
    dc.disable_feature({.feature = px.feature_b,
                        .removal = RemovalPolicy::kBlockFirstByte,
                        .trap = TrapPolicy::kRedirect});
    EXPECT_EQ(px.ring.count(ev::kTxnCommit), 1u);
    EXPECT_EQ(px.reg.counter("txn.commits"), 1u);
    EXPECT_EQ(px.recorder.disabled_features(),
              std::vector<std::string>{"B"});
  }
}

TEST(ObsIntegration, RegistrySnapshotIdenticalAcrossIdenticalRuns) {
  auto run_scenario = [] {
    ObsPipeline px;
    DynaCut dc(px.vos, px.pid);
    dc.set_observer(&px.bus, &px.reg);
    dc.disable_feature({.feature = px.feature_b,
                        .removal = RemovalPolicy::kBlockFirstByte,
                        .trap = TrapPolicy::kRedirect});
    px.request("B\n");
    px.request("A\n");
    dc.restore_feature("B");
    return px.reg.snapshot_json();
  };
  std::string first = run_scenario();
  std::string second = run_scenario();
  EXPECT_EQ(first, second);
  EXPECT_TRUE(obs::json_valid(first, nullptr));
}

TEST(ObsIntegration, VerifierLogHealsAndClampWarning) {
  ObsPipeline px;
  DynaCut dc(px.vos, px.pid);
  dc.set_observer(&px.bus, &px.reg);
  dc.disable_feature({.feature = px.feature_b,
                      .removal = RemovalPolicy::kBlockFirstByte,
                      .trap = TrapPolicy::kVerify});

  // The verifier heals the wrongly-removed block in place; reading the log
  // surfaces each newly seen heal exactly once.
  EXPECT_EQ(px.request("B\n"), "beta\n");
  std::vector<uint64_t> healed = dc.verifier_log(px.pid);
  ASSERT_GE(healed.size(), 1u);
  EXPECT_EQ(px.ring.count(ev::kVerifierHeal), healed.size());
  EXPECT_EQ(px.reg.counter("verifier.heals"), healed.size());
  dc.verifier_log(px.pid);  // same entries again: no new events
  EXPECT_EQ(px.ring.count(ev::kVerifierHeal), healed.size());

  // A guest that scribbles an absurd log_count must not drive an over-read:
  // the count is clamped to the table capacity and surfaced as a warning.
  os::Process* p = px.vos.process(px.pid);
  const os::LoadedModule* lib = p->module_named(core::kVerifyLibName);
  ASSERT_NE(lib, nullptr);
  uint64_t huge = 1ull << 40;
  p->mem.poke(lib->base + lib->binary->find_symbol("log_count")->value,
              &huge, 8);
  std::vector<uint64_t> clamped = dc.verifier_log(px.pid);
  const melf::Symbol* buf = lib->binary->find_symbol("log_buf");
  EXPECT_LE(clamped.size(), buf->size / 8);
  ASSERT_EQ(px.ring.count(ev::kWarning), 1u);
  const Event* warn = px.ring.of_type(ev::kWarning)[0];
  EXPECT_EQ(warn->attr_u64("raw_count"), huge);
  EXPECT_EQ(warn->attr_u64("capacity"), buf->size / 8);
}

// --- CutRequest ----------------------------------------------------------

TEST(CutRequestTest, PerRequestCheckOverride) {
  os::Os vos;
  auto bin = testing::build_toysrv();
  int pid = vos.spawn(bin, {apps::build_libc()});
  vos.run();
  DynaCut dc(vos, pid);  // instance-wide kEnforce

  FeatureSpec skewed;
  skewed.name = "skewed";
  skewed.blocks = {{"toysrv", bin->find_symbol("dispatch")->value + 1, 1}};

  // Enforced by default: the mid-instruction plan is rejected.
  EXPECT_THROW(dc.disable_feature({.feature = skewed}), StateError);
  // The same plan applies when this one request opts out of checking.
  dc.disable_feature(
      {.feature = skewed, .check = core::CheckMode::kOff});
  EXPECT_TRUE(dc.feature_disabled("skewed"));
  dc.restore_feature("skewed");
  EXPECT_EQ(dc.check_mode(), core::CheckMode::kEnforce);  // unchanged
}

TEST(CutRequestTest, LabelAndTagsRideOnTheCommitEvent) {
  ObsPipeline px;
  DynaCut dc(px.vos, px.pid);
  dc.set_observer(&px.bus, &px.reg);
  CustomizeReport rep =
      dc.disable_feature({.feature = px.feature_b,
                          .removal = RemovalPolicy::kBlockFirstByte,
                          .trap = TrapPolicy::kRedirect,
                          .label = "cve-2026-0001",
                          .tags = {{"ticket", "SEC-42"}}});
  EXPECT_EQ(rep.obs.label, "cve-2026-0001");
  const Event* commit = px.ring.of_type(ev::kTxnCommit)[0];
  EXPECT_EQ(commit->attr_str("label"), "cve-2026-0001");
  EXPECT_EQ(commit->attr_str("ticket"), "SEC-42");
  EXPECT_EQ(commit->attr_str("action"), "disable");
  // The recorder tracks the obs label, not the feature name.
  EXPECT_EQ(px.recorder.disabled_features(),
            std::vector<std::string>{"cve-2026-0001"});
  // Feature bookkeeping still uses the feature name.
  EXPECT_TRUE(dc.feature_disabled("B"));
  dc.restore_feature("B");
}

// --- deprecated positional shims ----------------------------------------

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(CutRequestTest, DeprecatedPositionalShimsStillWork) {
  ObsPipeline px;
  DynaCut dc(px.vos, px.pid);
  auto report = dc.preflight(px.feature_b, RemovalPolicy::kBlockFirstByte,
                             TrapPolicy::kRedirect);
  EXPECT_TRUE(report.ok());
  CustomizeReport rep = dc.disable_feature(
      px.feature_b, RemovalPolicy::kBlockFirstByte, TrapPolicy::kRedirect);
  EXPECT_GT(rep.edits.blocks_patched, 0u);
  EXPECT_EQ(rep.obs.label, "B");
  EXPECT_EQ(px.request("B\n"), "err\n");
  dc.restore_feature("B");
  EXPECT_EQ(px.request("B\n"), "beta\n");
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace dynacut
