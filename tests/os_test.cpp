// Integration tests for the osim kernel: process lifecycle, syscalls,
// sockets, fork, signal delivery/sigreturn (including the saved-IP
// redirection DynaCut's fault handlers rely on), loader/PLT linkage.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/libc.hpp"
#include "common/error.hpp"
#include "melf/builder.hpp"
#include "obs/bus.hpp"
#include "obs/sinks.hpp"
#include "os/os.hpp"
#include "os/syscall.hpp"

namespace dynacut::os {
namespace {

using apps::build_libc;
using melf::Binary;
using melf::ProgramBuilder;

std::shared_ptr<const Binary> make(ProgramBuilder& b) {
  return std::make_shared<Binary>(b.link());
}

TEST(Os, SpawnRunExit) {
  ProgramBuilder b("exit42");
  b.func("main").mov_ri(1, 42).sys(sys::kExit);
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b));
  os.run();
  ASSERT_TRUE(os.all_exited());
  EXPECT_EQ(os.process(pid)->exit_code, 42);
  EXPECT_EQ(os.process(pid)->term_signal, 0);
}

TEST(Os, SpawnLibraryWithoutEntryThrows) {
  Os os;
  EXPECT_THROW(os.spawn(build_libc()), GuestError);
}

TEST(Os, WriteToStdoutIsHostObservable) {
  ProgramBuilder b("hello");
  b.rodata_str("msg", "hello osim\n");
  b.func("main")
      .mov_ri(1, 1)
      .mov_sym(2, "msg")
      .mov_ri(3, 11)
      .sys(sys::kWrite)
      .mov_ri(1, 0)
      .sys(sys::kExit);
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b));
  os.run();
  EXPECT_EQ(os.process(pid)->stdout_buf, "hello osim\n");
}

TEST(Os, LibcCallThroughPlt) {
  ProgramBuilder b("uses_libc");
  b.rodata_str("msg", "four");
  b.func("main")
      .mov_sym(1, "msg")
      .call_import("strlen")
      .mov_rr(1, 0)
      .sys(sys::kExit);  // exit(strlen("four")) == exit(4)
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b), {build_libc()});
  os.run();
  ASSERT_TRUE(os.all_exited());
  EXPECT_EQ(os.process(pid)->exit_code, 4);
}

TEST(Os, EchoServerWithHostClient) {
  // Guest: listen on port 7; accept; echo one line back; exit.
  ProgramBuilder b("echo");
  b.bss("buf", 128);
  auto& f = b.func("main");
  f.sys(sys::kSocket).mov_rr(12, 0);                       // r12 = listen fd
  f.mov_rr(1, 12).mov_ri(2, 7).sys(sys::kBind);
  f.mov_rr(1, 12).sys(sys::kListen);
  f.mov_rr(1, 12).sys(sys::kAccept).mov_rr(13, 0);         // r13 = conn fd
  f.mov_rr(1, 13).mov_sym(2, "buf").mov_ri(3, 128).call_import("recv_line");
  f.mov_rr(3, 0);                                          // line length
  f.mov_rr(1, 13).mov_sym(2, "buf").sys(sys::kSend);
  f.mov_ri(1, 0).sys(sys::kExit);
  b.set_entry("main");

  Os os;
  int pid = os.spawn(make(b), {build_libc()});
  os.run();  // runs until blocked in accept
  EXPECT_FALSE(os.all_exited());
  ASSERT_TRUE(os.has_listener(7));

  HostConn conn = os.connect(7);
  conn.send("ping\n");
  os.run();
  EXPECT_EQ(conn.recv_all(), "ping\n");
  EXPECT_TRUE(os.all_exited());
  EXPECT_EQ(os.process(pid)->exit_code, 0);
}

TEST(Os, ConnectWithoutListenerThrows) {
  Os os;
  EXPECT_THROW(os.connect(1234), StateError);
}

TEST(Os, RecvBlocksUntilDataArrives) {
  ProgramBuilder b("blocker");
  b.bss("buf", 16);
  auto& f = b.func("main");
  f.sys(sys::kSocket).mov_rr(12, 0);
  f.mov_rr(1, 12).mov_ri(2, 9).sys(sys::kBind);
  f.mov_rr(1, 12).sys(sys::kListen);
  f.mov_rr(1, 12).sys(sys::kAccept).mov_rr(13, 0);
  f.mov_rr(1, 13).mov_sym(2, "buf").mov_ri(3, 16).sys(sys::kRecv);
  f.mov_rr(1, 0).sys(sys::kExit);  // exit(bytes received)
  b.set_entry("main");

  Os os;
  int pid = os.spawn(make(b));
  os.run();
  HostConn conn = os.connect(9);
  os.run();
  EXPECT_EQ(os.process(pid)->state, Process::State::kBlocked);
  conn.send("abc");
  os.run();
  ASSERT_TRUE(os.all_exited());
  EXPECT_EQ(os.process(pid)->exit_code, 3);
}

TEST(Os, RecvReturnsZeroOnPeerClose) {
  ProgramBuilder b("eof");
  b.bss("buf", 16);
  auto& f = b.func("main");
  f.sys(sys::kSocket).mov_rr(12, 0);
  f.mov_rr(1, 12).mov_ri(2, 10).sys(sys::kBind);
  f.mov_rr(1, 12).sys(sys::kListen);
  f.mov_rr(1, 12).sys(sys::kAccept).mov_rr(13, 0);
  f.mov_rr(1, 13).mov_sym(2, "buf").mov_ri(3, 16).sys(sys::kRecv);
  f.add_ri(0, 77).mov_rr(1, 0).sys(sys::kExit);  // exit(77 + n)
  b.set_entry("main");

  Os os;
  int pid = os.spawn(make(b));
  os.run();
  HostConn conn = os.connect(10);
  os.run();
  conn.close();
  os.run();
  ASSERT_TRUE(os.all_exited());
  EXPECT_EQ(os.process(pid)->exit_code, 77);
}

TEST(Os, GuestToGuestConnection) {
  // Server guest echoes; client guest connects, sends, checks reply length.
  ProgramBuilder sb("server");
  sb.bss("buf", 64);
  auto& s = sb.func("main");
  s.sys(sys::kSocket).mov_rr(12, 0);
  s.mov_rr(1, 12).mov_ri(2, 11).sys(sys::kBind);
  s.mov_rr(1, 12).sys(sys::kListen);
  s.mov_rr(1, 12).sys(sys::kAccept).mov_rr(13, 0);
  s.mov_rr(1, 13).mov_sym(2, "buf").mov_ri(3, 64).sys(sys::kRecv);
  s.mov_rr(3, 0);
  s.mov_rr(1, 13).mov_sym(2, "buf").sys(sys::kSend);
  s.mov_ri(1, 0).sys(sys::kExit);
  sb.set_entry("main");

  ProgramBuilder cb("client");
  cb.rodata_str("msg", "hi!");
  cb.bss("buf", 64);
  auto& c = cb.func("main");
  c.sys(sys::kSocket).mov_rr(12, 0);
  c.mov_rr(1, 12).mov_ri(2, 11).sys(sys::kConnect);
  c.mov_rr(1, 12).mov_sym(2, "msg").mov_ri(3, 3).sys(sys::kSend);
  c.mov_rr(1, 12).mov_sym(2, "buf").mov_ri(3, 64).sys(sys::kRecv);
  c.mov_rr(1, 0).sys(sys::kExit);  // exit(reply length)
  cb.set_entry("main");

  Os os;
  int spid = os.spawn(make(sb));
  os.run();  // server parks in accept before the client exists
  int cpid = os.spawn(make(cb));
  os.run();
  ASSERT_TRUE(os.all_exited());
  EXPECT_EQ(os.process(spid)->exit_code, 0);
  EXPECT_EQ(os.process(cpid)->exit_code, 3);
}

TEST(Os, ForkReturnsChildPidAndZero) {
  // Parent exits with (fork() != 0), child with 0 after observing r0 == 0.
  ProgramBuilder b("forker");
  auto& f = b.func("main");
  f.sys(sys::kFork);
  f.cmp_ri(0, 0).je("child");
  f.mov_ri(1, 1).sys(sys::kExit);  // parent
  f.label("child").mov_ri(1, 2).sys(sys::kExit);
  b.set_entry("main");

  Os os;
  int pid = os.spawn(make(b));
  os.run();
  ASSERT_TRUE(os.all_exited());
  auto pids = os.pids();
  ASSERT_EQ(pids.size(), 2u);
  EXPECT_EQ(os.process(pid)->exit_code, 1);
  int child = pids[0] == pid ? pids[1] : pids[0];
  EXPECT_EQ(os.process(child)->exit_code, 2);
  EXPECT_EQ(os.process(child)->ppid, pid);
}

TEST(Os, ForkCopiesMemoryCopyOnWriteIndependence) {
  // Child increments a counter; parent must not see the change.
  ProgramBuilder b("cow");
  b.data_u64("counter", 5);
  auto& f = b.func("main");
  f.sys(sys::kFork);
  f.cmp_ri(0, 0).je("child");
  // parent: sleep a bit, then exit(counter)
  f.mov_ri(1, 100000).sys(sys::kNanosleep);
  f.mov_sym(6, "counter").load(1, 6, 0).sys(sys::kExit);
  f.label("child")
      .mov_sym(6, "counter")
      .load(7, 6, 0)
      .add_ri(7, 10)
      .store(6, 0, 7)
      .mov_ri(1, 0)
      .sys(sys::kExit);
  b.set_entry("main");

  Os os;
  int pid = os.spawn(make(b));
  os.run();
  ASSERT_TRUE(os.all_exited());
  EXPECT_EQ(os.process(pid)->exit_code, 5);  // parent unaffected
}

TEST(Os, ProcessGroupCollectsDescendants) {
  ProgramBuilder b("tree");
  auto& f = b.func("main");
  f.sys(sys::kFork);
  f.label("spin").jmp("spin");  // parent and child both spin forever
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b));
  os.run(100000);  // enough to fork; both stay alive spinning
  auto group = os.process_group(pid);
  EXPECT_EQ(group.size(), 2u);
  EXPECT_EQ(group[0], pid);
}

TEST(Os, TrapWithoutHandlerKillsProcess) {
  ProgramBuilder b("trapdie");
  b.func("main").trap();
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b));
  os.run();
  ASSERT_TRUE(os.all_exited());
  EXPECT_EQ(os.process(pid)->term_signal, sig::kSigTrap);
}

TEST(Os, SegvOnUnmappedAccessKills) {
  ProgramBuilder b("segv");
  b.func("main").mov_ri(1, 0xdead0000).load(2, 1, 0).ret();
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b));
  os.run();
  EXPECT_EQ(os.process(pid)->term_signal, sig::kSigSegv);
}

TEST(Os, DivByZeroRaisesSigfpe) {
  ProgramBuilder b("fpe");
  b.func("main").mov_ri(1, 3).mov_ri(2, 0).div_rr(1, 2).ret();
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b));
  os.run();
  EXPECT_EQ(os.process(pid)->term_signal, sig::kSigFpe);
}

// The central mechanism test: a guest SIGTRAP handler rewrites the saved IP
// in its signal frame; sigreturn resumes at the redirected location. This
// is exactly how DynaCut's injected fault handler implements "respond 403
// instead of crashing" (paper §3.2.2, Figure 5).
TEST(Os, TrapHandlerRedirectsSavedIp) {
  ProgramBuilder b("redirect");
  auto& f = b.func("main");
  f.mov_ri(1, sig::kSigTrap)
      .mov_sym(2, "handler")
      .mov_sym(3, "restorer")
      .sys(sys::kSigaction);
  f.trap();                            // 1 byte; handler skips over it
  f.mov_ri(1, 55).sys(sys::kExit);     // reached only via redirect
  b.func("handler")
      .load(6, 1, 0)   // frame->saved_ip (address of the trap byte)
      .add_ri(6, 1)    // skip the 1-byte trap
      .store(1, 0, 6)
      .ret();          // returns into the restorer
  b.func("restorer").sys(sys::kSigreturn);
  b.set_entry("main");

  Os os;
  int pid = os.spawn(make(b));
  os.run();
  ASSERT_TRUE(os.all_exited());
  EXPECT_EQ(os.process(pid)->term_signal, 0);
  EXPECT_EQ(os.process(pid)->exit_code, 55);
}

TEST(Os, TrapHandlerPreservesRegistersAcrossSignal) {
  ProgramBuilder b("sigregs");
  auto& f = b.func("main");
  f.mov_ri(1, sig::kSigTrap)
      .mov_sym(2, "handler")
      .mov_sym(3, "restorer")
      .sys(sys::kSigaction);
  f.mov_ri(9, 123);  // must survive the handler clobbering r9
  f.trap();
  f.mov_rr(1, 9).sys(sys::kExit);
  b.func("handler")
      .mov_ri(9, 999)  // clobber; sigreturn must restore 123
      .load(6, 1, 0)
      .add_ri(6, 1)
      .store(1, 0, 6)
      .ret();
  b.func("restorer").sys(sys::kSigreturn);
  b.set_entry("main");

  Os os;
  int pid = os.spawn(make(b));
  os.run();
  ASSERT_TRUE(os.all_exited());
  EXPECT_EQ(os.process(pid)->exit_code, 123);
}

TEST(Os, SigreturnWithoutFrameKills) {
  ProgramBuilder b("badsigret");
  b.func("main").sys(sys::kSigreturn);
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b));
  os.run();
  EXPECT_EQ(os.process(pid)->term_signal, sig::kSigSegv);
}

TEST(Os, NanosleepAdvancesVirtualClock) {
  ProgramBuilder b("sleeper");
  b.func("main").mov_ri(1, 5000).sys(sys::kNanosleep).mov_ri(1, 0).sys(
      sys::kExit);
  b.set_entry("main");
  Os os;
  os.spawn(make(b));
  os.run();
  ASSERT_TRUE(os.all_exited());
  EXPECT_GE(os.now(), 5000u);
}

TEST(Os, MmapMunmap) {
  ProgramBuilder b("mapper");
  auto& f = b.func("main");
  f.mov_ri(1, 0)
      .mov_ri(2, 8192)
      .mov_ri(3, kProtRead | kProtWrite)
      .sys(sys::kMmap)
      .mov_rr(12, 0);            // addr
  f.mov_ri(6, 77).store(12, 0, 6).load(7, 12, 0);  // write+read the mapping
  f.mov_rr(1, 12).mov_ri(2, 8192).sys(sys::kMunmap);
  f.mov_rr(1, 7).sys(sys::kExit);
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b));
  os.run();
  ASSERT_TRUE(os.all_exited());
  EXPECT_EQ(os.process(pid)->exit_code, 77);
}

TEST(Os, MprotectMakesCodeWritable) {
  // Guest patches its own code after mprotect (the verifier-library path).
  ProgramBuilder b("selfpatch");
  auto& f = b.func("main");
  // mprotect(kAppBase, page, RWX)
  f.mov_ri(1, kAppBase)
      .mov_ri(2, kPageSize)
      .mov_ri(3, kProtRead | kProtWrite | kProtExec)
      .sys(sys::kMprotect);
  // overwrite the trap below with NOP (0x90) before reaching it
  f.mov_sym(6, "patchee").mov_ri(7, 0x90).storeb(6, 0, 7);
  f.call("patchee");
  f.mov_ri(1, 21).sys(sys::kExit);
  b.func("patchee").trap().ret();  // trap byte gets replaced by nop
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b));
  os.run();
  ASSERT_TRUE(os.all_exited());
  EXPECT_EQ(os.process(pid)->term_signal, 0);
  EXPECT_EQ(os.process(pid)->exit_code, 21);
}

TEST(Os, WriteToCodeWithoutMprotectFaults) {
  ProgramBuilder b("wxviolate");
  auto& f = b.func("main");
  f.mov_sym(6, "main").mov_ri(7, 0x90).storeb(6, 0, 7);
  f.mov_ri(1, 0).sys(sys::kExit);
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b));
  os.run();
  EXPECT_EQ(os.process(pid)->term_signal, sig::kSigSegv);
}

TEST(Os, NudgeEventsRecorded) {
  ProgramBuilder b("nudger");
  b.func("main").mov_ri(1, 424242).sys(sys::kNudge).mov_ri(1, 0).sys(
      sys::kExit);
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b));
  os.run();
  ASSERT_EQ(os.nudges().size(), 1u);
  EXPECT_EQ(os.nudges()[0].first, pid);
  EXPECT_EQ(os.nudges()[0].second, 424242u);
}

TEST(Os, GetpidAndClockSyscalls) {
  ProgramBuilder b("pidclk");
  auto& f = b.func("main");
  f.sys(sys::kGetpid).mov_rr(12, 0);
  f.sys(sys::kClock).cmp_ri(0, 0).je("bad");
  f.mov_rr(1, 12).sys(sys::kExit);
  f.label("bad").mov_ri(1, 0).sys(sys::kExit);
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b));
  os.run();
  EXPECT_EQ(os.process(pid)->exit_code, pid);
}

TEST(Os, FreezeHidesProcessFromScheduler) {
  ProgramBuilder b("spinner");
  auto& f = b.func("main");
  f.label("spin").mov_ri(1, 10).sys(sys::kNanosleep).jmp("spin");
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b));
  os.run(1000);
  uint64_t retired_before = os.process(pid)->instructions_retired;
  os.freeze(pid);
  os.run(1000);
  EXPECT_EQ(os.process(pid)->instructions_retired, retired_before);
  os.thaw(pid);
  os.run(1000);
  EXPECT_GT(os.process(pid)->instructions_retired, retired_before);
}

TEST(Os, FreezeTwiceThrows) {
  ProgramBuilder b("spin2");
  b.func("main").label("s").jmp("s");
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b));
  os.freeze(pid);
  EXPECT_THROW(os.freeze(pid), StateError);
  EXPECT_THROW(os.thaw(999), StateError);
}

TEST(Os, RunTicksAdvancesIdleClock) {
  Os os;
  uint64_t t0 = os.now();
  os.run_ticks(12345);
  EXPECT_GE(os.now() - t0, 12345u);
}

TEST(Os, UnknownSyscallKillsProcess) {
  ProgramBuilder b("badsys");
  b.func("main").sys(9999);
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b));
  os.run();
  EXPECT_EQ(os.process(pid)->term_signal, 31);
}

TEST(Os, TrapOnQuantumBoundaryChargedOncePerAttempt) {
  // kQuantum-1 nops then a trap: the trap is the quantum's last attempt and
  // must be charged to instructions_retired exactly once — on both the
  // interpreter and superblock execution paths.
  for (bool sb : {false, true}) {
    ProgramBuilder b("qtrap");
    auto& f = b.func("main");
    for (uint64_t i = 0; i + 1 < Os::kQuantum; ++i) f.nop();
    f.trap();
    b.set_entry("main");
    Os os;
    os.set_superblocks(sb);
    int pid = os.spawn(make(b));
    os.run();
    EXPECT_EQ(os.process(pid)->term_signal, sig::kSigTrap);
    EXPECT_EQ(os.process(pid)->instructions_retired, Os::kQuantum);
  }
}

TEST(Os, SuperblockAccountingMatchesInterpreter) {
  // A serving loop long enough to get traced and to cross many quantum
  // boundaries: per-instruction accounting must be identical with and
  // without superblocks.
  uint64_t retired[2] = {0, 0};
  for (int sb = 0; sb < 2; ++sb) {
    ProgramBuilder b("sbloop");
    auto& f = b.func("main");
    f.mov_ri(2, 0);
    f.label("top").add_ri(2, 1).cmp_ri(2, 5000).jlt("top");
    f.mov_ri(1, 42).sys(sys::kExit);
    b.set_entry("main");
    Os os;
    os.set_superblocks(sb == 1);
    int pid = os.spawn(make(b));
    os.run();
    ASSERT_TRUE(os.all_exited());
    EXPECT_EQ(os.process(pid)->exit_code, 42);
    retired[sb] = os.process(pid)->instructions_retired;
  }
  EXPECT_GT(retired[0], Os::kQuantum);  // really crossed quanta
  EXPECT_EQ(retired[0], retired[1]);
}

TEST(Os, PatchRetiresSuperblockAndEmitsEvents) {
  // A spinning guest gets its hot loop fused; the host then pokes a trap
  // byte at the guest's next instruction (the rewriter's int3). The stale
  // trace must retire before the next quantum retires anything from it,
  // and the bus must see the sb.build / sb.retire lifecycle.
  ProgramBuilder b("spin");
  b.func("main").label("s").add_ri(1, 1).jmp("s");
  b.set_entry("main");
  obs::EventBus bus;
  obs::RingBufferSink ring;
  bus.add_sink(&ring);
  Os os;
  os.set_event_bus(&bus);
  int pid = os.spawn(make(b));
  os.run(20 * Os::kQuantum);
  Process* p = os.process(pid);
  ASSERT_GT(p->sbcache.builds(), 0u);
  bool saw_build = false;
  for (const auto& ev : ring.events()) {
    saw_build = saw_build || ev.type == obs::ev::kSbBuild;
  }
  EXPECT_TRUE(saw_build);

  uint8_t trap = 0xCC;
  uint64_t target = p->cpu.ip;
  p->mem.poke(target, &trap, 1);
  uint64_t before = p->instructions_retired;
  os.run();
  EXPECT_EQ(p->term_signal, sig::kSigTrap);
  EXPECT_EQ(p->instructions_retired, before + 1);  // only the trap attempt
  bool saw_retire = false;
  for (const auto& ev : ring.events()) {
    saw_retire = saw_retire || ev.type == obs::ev::kSbRetire;
  }
  EXPECT_TRUE(saw_retire);
}

struct CountingSink : BlockSink {
  uint64_t blocks = 0;
  void on_block(const Process&, uint64_t) override { ++blocks; }
};

TEST(Os, BlockSinkKeepsPerBlockCoverage) {
  // Coverage tracing needs an event per basic block; while a sink is
  // attached the scheduler must bypass superblocks (a fused trace retires
  // many blocks without surfacing any of them).
  ProgramBuilder b("cover");
  auto& f = b.func("main");
  f.mov_ri(2, 0);
  f.label("top").add_ri(2, 1).cmp_ri(2, 100).jlt("top");
  f.mov_ri(1, 0).sys(sys::kExit);
  b.set_entry("main");
  Os os;
  CountingSink sink;
  os.set_block_sink(&sink);
  int pid = os.spawn(make(b));
  os.run();
  ASSERT_TRUE(os.all_exited());
  EXPECT_GE(sink.blocks, 100u);  // one event per iteration, not per trace
  EXPECT_EQ(os.process(pid)->sbcache.builds(), 0u);
}

std::shared_ptr<const Binary> make_spinner(const char* name, int body_adds) {
  ProgramBuilder b(name);
  auto& f = b.func("main");
  f.label("spin");
  for (int i = 0; i < body_adds; ++i) f.add_ri(2, 1);
  f.jmp("spin");
  b.set_entry("main");
  return make(b);
}

TEST(Os, SchedulerRotationAvoidsPidOrderStarvation) {
  // Budget-sliced driving (run(kQuantum) in a loop) used to restart the
  // ready scan at the lowest pid every call, so one hot low-pid spinner
  // could absorb every slice. The rotating ready queue must share slices
  // across all runnable pids regardless of pid order.
  Os os;
  auto spin = make_spinner("fair", 1);
  std::vector<int> pids;
  for (int i = 0; i < 4; ++i) pids.push_back(os.spawn(spin));
  for (int i = 0; i < 64; ++i) os.run(Os::kQuantum);
  uint64_t lo = ~0ull, hi = 0;
  for (int pid : pids) {
    uint64_t r = os.process(pid)->instructions_retired;
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  EXPECT_GT(lo, 0u) << "a runnable pid was starved";
  EXPECT_LE(hi, 2 * lo) << "slices not shared fairly across pids";
}

TEST(Os, RunTicksLandsComputeExactlyOnDeadline) {
  // The deadline must be honored per operation: a pure-compute workload
  // (1 tick per instruction) lands exactly on the deadline instead of
  // overshooting by up to a whole scheduling round.
  Os os;
  int pid = os.spawn(make_spinner("exact", 3));
  os.run_ticks(10'000);
  EXPECT_EQ(os.now(), 10'000u);
  EXPECT_EQ(os.process(pid)->instructions_retired, 10'000u);
  os.run_ticks(3'333);  // a second slice continues from the same clock
  EXPECT_EQ(os.now(), 13'333u);
}

TEST(Os, RunTicksIdleJumpIsExact) {
  // With nothing schedulable the clock jumps to the deadline, not past it.
  Os os;
  os.run_ticks(12'345);
  EXPECT_EQ(os.now(), 12'345u);
  os.set_cores(4);
  os.run_ticks(1'000);
  EXPECT_EQ(os.now(), 13'345u);
  for (size_t c = 0; c < 4; ++c) EXPECT_EQ(os.core_stats(c).clock, 13'345u);
}

TEST(Os, HostConnRecvLineDrainsPipelinedBatch) {
  // recv_line over a pipelined batch: every line comes back intact and in
  // order, a partial tail stays buffered (pending, not dropped), and the
  // consumed-offset bookkeeping stays consistent with recv_all.
  auto wire = std::make_shared<Conn>();
  HostConn host(SockEnd{wire, true});
  HostConn peer(SockEnd{wire, false});

  std::string batch;
  for (int i = 0; i < 100; ++i) batch += "line " + std::to_string(i) + "\n";
  peer.send(batch);
  peer.send("tail");  // incomplete final line
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(host.recv_line(), "line " + std::to_string(i) + "\n");
  }
  EXPECT_EQ(host.recv_line(), "");  // no complete line yet
  EXPECT_EQ(host.pending(), 4u);    // "tail" buffered, not dropped
  peer.send("\n");
  EXPECT_EQ(host.recv_line(), "tail\n");
  EXPECT_EQ(host.pending(), 0u);

  peer.send("x\nyz");
  EXPECT_EQ(host.recv_line(), "x\n");
  EXPECT_EQ(host.recv_all(), "yz");  // recv_all honors the consumed offset
  EXPECT_EQ(host.pending(), 0u);
}

TEST(Os, MultiCoreSpreadsLoadAcrossCores) {
  Os os;
  os.set_cores(4);
  auto spin = make_spinner("mc", 2);
  std::vector<int> pids;
  for (int i = 0; i < 8; ++i) pids.push_back(os.spawn(spin));
  os.run(80'000);
  uint64_t per_core_sum = 0, per_pid_sum = 0;
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_GT(os.core_stats(c).retired, 0u) << "core " << c << " idle";
    per_core_sum += os.core_stats(c).retired;
  }
  for (int pid : pids) per_pid_sum += os.process(pid)->instructions_retired;
  EXPECT_EQ(per_core_sum, os.total_retired());
  EXPECT_EQ(per_pid_sum, os.total_retired());
}

TEST(Os, WorkStealingRebalancesPinnedBacklog) {
  // Pin every spinner onto core 0: the idle cores must steal work instead
  // of spinning their clocks forward, and the bus must see sched.steal.
  obs::EventBus bus;
  obs::RingBufferSink ring;
  bus.add_sink(&ring);
  Os os;
  os.set_event_bus(&bus);
  os.set_cores(2);
  os.set_seed(1);
  auto spin = make_spinner("steal", 2);
  std::vector<int> pids;
  for (int i = 0; i < 4; ++i) pids.push_back(os.spawn(spin));
  for (int pid : pids) os.pin(pid, 0);
  os.run(40'000);
  EXPECT_GT(os.core_stats(1).steals, 0u);
  EXPECT_GT(os.core_stats(1).retired, 0u);
  EXPECT_GT(ring.count(obs::ev::kSchedSteal), 0u);
}

TEST(Os, MultiCoreSameSeedIsDeterministic) {
  // Two runs with the same spawn sequence and seed must produce identical
  // schedules: per-pid retired counts and per-core clock/retired/steal
  // counters all match bit-for-bit.
  auto run_once = [](std::vector<uint64_t>& out) {
    Os os;
    os.set_cores(4);
    os.set_seed(99);
    std::vector<int> pids;
    for (int i = 0; i < 6; ++i) {
      pids.push_back(os.spawn(make_spinner("det", 1 + i % 3)));
    }
    ProgramBuilder s("sleeper");
    s.func("main").label("z").mov_ri(1, 50).sys(sys::kNanosleep).jmp("z");
    s.set_entry("main");
    pids.push_back(os.spawn(make(s)));
    os.run(120'000);
    for (int pid : pids) out.push_back(os.process(pid)->instructions_retired);
    for (size_t c = 0; c < 4; ++c) {
      out.push_back(os.core_stats(c).clock);
      out.push_back(os.core_stats(c).retired);
      out.push_back(os.core_stats(c).steals);
    }
    out.push_back(os.total_retired());
  };
  std::vector<uint64_t> a, b2;
  run_once(a);
  run_once(b2);
  EXPECT_EQ(a, b2);
}

TEST(Os, FreezeGroupFailureRollsBackWhileOtherCoresRetire) {
  // A freeze_group that fails mid-list (dead pid) must thaw everything it
  // already froze; a successful freeze of one pid must not stop processes
  // on other cores from retiring instructions.
  Os os;
  os.set_cores(2);
  auto spin = make_spinner("grp", 1);
  int a = os.spawn(spin);  // round-robin: core 0
  int b = os.spawn(spin);  // core 1
  os.run(4'000);

  EXPECT_THROW(os.freeze_group({a, 999}), StateError);
  EXPECT_EQ(os.process(a)->state, Process::State::kRunnable);  // rolled back
  uint64_t ra = os.process(a)->instructions_retired;
  uint64_t rb = os.process(b)->instructions_retired;
  os.run(4'000);
  EXPECT_GT(os.process(a)->instructions_retired, ra);
  EXPECT_GT(os.process(b)->instructions_retired, rb);

  os.freeze_group({a});
  ra = os.process(a)->instructions_retired;
  rb = os.process(b)->instructions_retired;
  os.run(4'000);
  EXPECT_EQ(os.process(a)->instructions_retired, ra);  // frozen: no progress
  EXPECT_GT(os.process(b)->instructions_retired, rb);  // other core serves
  os.thaw_group({a});
  os.run(4'000);
  EXPECT_GT(os.process(a)->instructions_retired, ra);
}

TEST(Os, FrozenServerConnectionsBufferBytesUntilThaw) {
  // Bytes sent to a frozen server's connection must sit in the socket
  // buffer (not be dropped); after thaw the server drains and answers them.
  ProgramBuilder b("echoloop");
  b.bss("buf", 128);
  auto& f = b.func("main");
  f.sys(sys::kSocket).mov_rr(12, 0);
  f.mov_rr(1, 12).mov_ri(2, 21).sys(sys::kBind);
  f.mov_rr(1, 12).sys(sys::kListen);
  f.mov_rr(1, 12).sys(sys::kAccept).mov_rr(13, 0);
  f.label("loop");
  f.mov_rr(1, 13).mov_sym(2, "buf").mov_ri(3, 128).call_import("recv_line");
  f.mov_rr(3, 0);
  f.mov_rr(1, 13).mov_sym(2, "buf").sys(sys::kSend);
  f.jmp("loop");
  b.set_entry("main");

  Os os;
  int pid = os.spawn(make(b), {build_libc()});
  os.run();  // blocked in accept
  HostConn conn = os.connect(21);
  conn.send("a\n");
  os.run();
  EXPECT_EQ(conn.recv_all(), "a\n");  // serving normally

  os.freeze(pid);
  conn.send("b\n");
  conn.send("c\n");
  os.run(50'000);
  EXPECT_EQ(conn.recv_all(), "");  // frozen: no replies yet

  os.thaw(pid);
  os.run(50'000);
  EXPECT_EQ(conn.recv_all(), "b\nc\n");  // buffered bytes served after thaw
}

TEST(Os, ChargeDowntimeGatesOnlyListedPids) {
  // Freeze-set-scoped downtime: the listed pid is gated until its core
  // clock reaches now + ticks, while other processes keep retiring.
  Os os;
  os.set_cores(2);
  auto spin = make_spinner("gate", 1);
  int a = os.spawn(spin);  // core 0
  int b = os.spawn(spin);  // core 1
  os.run(2'000);
  os.charge_downtime({a}, 50'000);
  uint64_t ra = os.process(a)->instructions_retired;
  uint64_t rb = os.process(b)->instructions_retired;
  os.run(20'000);
  EXPECT_EQ(os.process(a)->instructions_retired, ra);  // still inside window
  EXPECT_GT(os.process(b)->instructions_retired, rb);  // unaffected
  os.run_ticks(80'000);  // advances core clocks past the gate
  EXPECT_GT(os.process(a)->instructions_retired, ra);
}

TEST(Loader, ResolveSymbolAcrossModules) {
  ProgramBuilder b("resolver");
  b.func("main").call_import("strlen").mov_ri(1, 0).sys(sys::kExit);
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b), {build_libc()});
  const Process* p = os.process(pid);
  uint64_t strlen_addr = resolve_symbol(*p, "strlen");
  EXPECT_NE(strlen_addr, 0u);
  EXPECT_GE(strlen_addr, kLibcBase);
  EXPECT_EQ(resolve_symbol(*p, "no_such_symbol"), 0u);
}

TEST(Loader, UnresolvedImportThrows) {
  ProgramBuilder b("missing");
  b.func("main").call_import("nonexistent_function").ret();
  b.set_entry("main");
  Os os;
  EXPECT_THROW(os.spawn(make(b)), GuestError);
}

TEST(Loader, ModuleAtMapsAddressesToModules) {
  ProgramBuilder b("mapped");
  b.func("main").call_import("strlen").mov_ri(1, 0).sys(sys::kExit);
  b.set_entry("main");
  Os os;
  int pid = os.spawn(make(b), {build_libc()});
  const Process* p = os.process(pid);
  const LoadedModule* app = p->module_at(kAppBase);
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(app->name, "mapped");
  const LoadedModule* libc = p->module_at(kLibcBase);
  ASSERT_NE(libc, nullptr);
  EXPECT_EQ(libc->name, "libc.so");
  EXPECT_EQ(p->module_at(0x1), nullptr);
}

}  // namespace
}  // namespace dynacut::os
