// Tests for automatic init-phase detection (syscall-monitoring extension).
#include <gtest/gtest.h>

#include "analysis/coverage.hpp"
#include "apps/libc.hpp"
#include "apps/minikv.hpp"
#include "os/os.hpp"
#include "test_guests.hpp"
#include "trace/phase_detect.hpp"
#include "trace/trace.hpp"

namespace dynacut::trace {
namespace {

TEST(PhaseDetector, FiresOnceAtFirstAccept) {
  os::Os vos;
  int fired_count = 0;
  int fired_pid = 0;
  PhaseDetector det(vos, [&](const os::Process& p) {
    ++fired_count;
    fired_pid = p.pid;
  });
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  vos.run();  // parks in accept (syscall executes, then blocks + re-executes)
  EXPECT_EQ(fired_count, 1);
  EXPECT_EQ(fired_pid, pid);
  EXPECT_TRUE(det.fired(pid));

  // Serve a request; the re-executed accept must not fire again.
  auto conn = vos.connect(80);
  conn.send("A\nQ\n");
  vos.run();
  EXPECT_EQ(fired_count, 1);
}

TEST(PhaseDetector, DoesNotFireForNonServers) {
  os::Os vos;
  int fired = 0;
  PhaseDetector det(vos, [&](const os::Process&) { ++fired; });
  melf::ProgramBuilder b("batch");
  b.func("main").mov_ri(1, 0).sys(os::sys::kExit);
  b.set_entry("main");
  int pid = vos.spawn(std::make_shared<melf::Binary>(b.link()));
  vos.run();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(det.fired(pid));
}

TEST(PhaseDetector, AutomaticNudgeMatchesManualSplit) {
  // Fully automatic init/serving split: the detector triggers the tracer's
  // dump_and_reset, no user involvement — and the resulting init-only set
  // must contain minikv's init functions and none of its command handlers.
  os::Os vos;
  Tracer tracer(vos);
  TraceLog init_log;
  PhaseDetector det(vos, [&](const os::Process& p) {
    init_log = tracer.dump_and_reset(p.pid);
  });

  auto bin = apps::build_minikv();
  int pid = vos.spawn(bin, {apps::build_libc()});
  vos.run();
  ASSERT_TRUE(det.fired(pid));
  auto conn = vos.connect(apps::kMinikvPort);
  conn.send("SET k v\nGET k\nPING\nSHUTDOWN\n");
  vos.run();
  TraceLog serving_log = tracer.dump(pid);

  analysis::CoverageGraph init_only =
      analysis::init_only(init_log, serving_log, "minikv");
  ASSERT_FALSE(init_only.empty());
  EXPECT_TRUE(init_only.contains(
      "minikv", bin->find_symbol("init_table")->value));
  for (const char* serving_fn : {"cmd_get", "cmd_set", "cmd_ping",
                                 "dispatch_command", "handle_conn"}) {
    const melf::Symbol* s = bin->find_symbol(serving_fn);
    EXPECT_FALSE(init_only.contains("minikv", s->value)) << serving_fn;
  }
}

}  // namespace
}  // namespace dynacut::trace
