// Tests for the image rewriter: byte patches + undo, trap insertion, page
// unmapping, VMA surgery, sigaction rewriting and PI library injection with
// GOT/PLT relocation.
#include <gtest/gtest.h>

#include "apps/libc.hpp"
#include "core/handler_lib.hpp"
#include "image/checkpoint.hpp"
#include "isa/isa.hpp"
#include "melf/builder.hpp"
#include "os/os.hpp"
#include "rewriter/rewriter.hpp"
#include "test_guests.hpp"

namespace dynacut::rw {
namespace {

using melf::Binary;

/// Boots toysrv to its steady state and checkpoints it.
struct Fixture {
  os::Os vos;
  int pid = 0;
  image::ProcessImage img;
  std::shared_ptr<const Binary> bin;

  Fixture() {
    bin = testing::build_toysrv();
    pid = vos.spawn(bin, {apps::build_libc()});
    vos.run();
    img = image::checkpoint(vos, {.pid = pid}).img;
  }

  uint64_t app_base() const { return img.module_named("toysrv")->base; }
  uint64_t sym(const std::string& name) const {
    return app_base() + bin->find_symbol(name)->value;
  }
};

TEST(Rewriter, WriteBytesRecordsOriginal) {
  Fixture fx;
  ImageRewriter rw(fx.img);
  uint64_t addr = fx.sym("handle_b");
  std::vector<uint8_t> before = fx.img.read_bytes(addr, 4);
  std::vector<uint8_t> patch{1, 2, 3, 4};
  PatchRecord rec = rw.write_bytes(addr, patch);
  EXPECT_EQ(rec.vaddr, addr);
  EXPECT_EQ(rec.original, before);
  EXPECT_EQ(fx.img.read_bytes(addr, 4), patch);
  rw.undo(rec);
  EXPECT_EQ(fx.img.read_bytes(addr, 4), before);
}

TEST(Rewriter, BlockFirstByteInsertsTrap) {
  Fixture fx;
  ImageRewriter rw(fx.img);
  uint64_t addr = fx.sym("handle_b");
  PatchRecord rec = rw.block_first_byte(addr);
  EXPECT_EQ(fx.img.read_u8(addr), 0xCC);
  EXPECT_EQ(rec.original.size(), 1u);
  EXPECT_NE(rec.original[0], 0xCC);
  // Bytes after the first are untouched.
  EXPECT_EQ(fx.img.read_bytes(addr + 1, 2),
            std::vector<uint8_t>(
                {fx.bin->section(melf::SectionKind::kText)
                     ->bytes[fx.bin->find_symbol("handle_b")->value + 1],
                 fx.bin->section(melf::SectionKind::kText)
                     ->bytes[fx.bin->find_symbol("handle_b")->value + 2]}));
}

TEST(Rewriter, WipeFillsWholeRangeWithTraps) {
  Fixture fx;
  ImageRewriter rw(fx.img);
  uint64_t addr = fx.sym("handle_b");
  uint64_t size = fx.bin->find_symbol("handle_b")->size;
  PatchRecord rec = rw.wipe(addr, size);
  for (uint64_t i = 0; i < size; ++i) {
    EXPECT_EQ(fx.img.read_u8(addr + i), 0xCC);
  }
  rw.undo(rec);
  EXPECT_NE(fx.img.read_u8(addr), 0xCC);
}

TEST(Rewriter, UndoDoesNotInflatePatchStats) {
  Fixture fx;
  ImageRewriter rw(fx.img);
  uint64_t addr = fx.sym("handle_b");
  PatchRecord rec = rw.wipe(addr, 16);
  EXPECT_EQ(rw.bytes_patched(), 16u);
  EXPECT_EQ(rw.bytes_restored(), 0u);
  rw.undo(rec);
  // Undos accumulate in their own counter; a patch/undo cycle must not
  // read as 32 bytes of customization.
  EXPECT_EQ(rw.bytes_patched(), 16u);
  EXPECT_EQ(rw.bytes_restored(), 16u);
}

TEST(Rewriter, PagesTouchedDedupesSamePage) {
  Fixture fx;
  ImageRewriter rw(fx.img);
  uint64_t addr = fx.sym("handle_b");
  rw.block_first_byte(addr);
  rw.block_first_byte(addr + 2);
  rw.wipe(addr + 4, 8);
  // Three edits on one page: one distinct page touched.
  EXPECT_EQ(rw.pages_touched(), 1u);
  // A zero-length patch touches no page at all.
  rw.write_bytes(addr + 1, {});
  EXPECT_EQ(rw.pages_touched(), 1u);
}

TEST(Rewriter, PatchOutsideVmaThrows) {
  Fixture fx;
  ImageRewriter rw(fx.img);
  EXPECT_THROW(rw.block_first_byte(0x1), StateError);
}

TEST(Rewriter, UnmapPagesDropsRange) {
  Fixture fx;
  ImageRewriter rw(fx.img);
  uint64_t text = fx.app_base();  // .text VMA start
  ASSERT_NE(fx.img.vma_at(text), nullptr);
  rw.unmap_pages(text, kPageSize);
  EXPECT_EQ(fx.img.vma_at(text), nullptr);
  EXPECT_GT(rw.pages_touched(), 0u);
}

TEST(Rewriter, SetSigactionUpdatesCore) {
  Fixture fx;
  ImageRewriter rw(fx.img);
  rw.set_sigaction(os::sig::kSigTrap, 0x1234, 0x5678);
  EXPECT_EQ(fx.img.core.sigactions[os::sig::kSigTrap].handler, 0x1234u);
  EXPECT_EQ(fx.img.core.sigactions[os::sig::kSigTrap].restorer, 0x5678u);
  EXPECT_THROW(rw.set_sigaction(99, 0, 0), StateError);
}

TEST(Rewriter, MakeCodeWritableAddsWToExecVmas) {
  Fixture fx;
  ImageRewriter rw(fx.img);
  rw.make_code_writable("toysrv");
  const image::VmaImage* text = fx.img.vma_at(fx.app_base());
  ASSERT_NE(text, nullptr);
  EXPECT_TRUE(text->prot & kProtWrite);
  EXPECT_TRUE(text->prot & kProtExec);
  EXPECT_THROW(rw.make_code_writable("nope"), StateError);
}

TEST(Rewriter, InjectLibraryCreatesVmasAndModule) {
  Fixture fx;
  ImageRewriter rw(fx.img);
  size_t vmas_before = fx.img.vmas.size();
  auto lib = core::build_redirect_lib(8);
  uint64_t base = rw.inject_library(lib);
  EXPECT_NE(base, 0u);
  EXPECT_EQ(base % kPageSize, 0u);
  EXPECT_GT(fx.img.vmas.size(), vmas_before);
  ASSERT_NE(fx.img.module_named(core::kSigLibName), nullptr);
  // Code bytes are in place.
  uint64_t handler = rw.symbol_addr(core::kSigLibName, "dynacut_handler");
  EXPECT_NE(fx.img.read_u8(handler), 0u);
  // The chosen base does not collide with existing modules.
  EXPECT_NE(fx.img.vma_at(base), nullptr);
}

TEST(Rewriter, InjectAtExplicitBase) {
  Fixture fx;
  ImageRewriter rw(fx.img);
  auto lib = core::build_redirect_lib(8);
  uint64_t base = rw.inject_library(lib, 0x7000000000);
  EXPECT_EQ(base, 0x7000000000u);
  EXPECT_THROW(rw.inject_library(core::build_verifier_lib(1, 1), 0x123),
               StateError);  // unaligned
}

TEST(Rewriter, InjectTwiceThrows) {
  Fixture fx;
  ImageRewriter rw(fx.img);
  rw.inject_library(core::build_redirect_lib(8));
  EXPECT_THROW(rw.inject_library(core::build_redirect_lib(8)), StateError);
}

TEST(Rewriter, InjectResolvesGotAgainstLoadedLibc) {
  // A PIC library importing strlen gets its GOT slot filled with libc's
  // strlen address — the paper's PLT relocation flow.
  Fixture fx;
  melf::ProgramBuilder lb("libuser.so");
  lb.func("use_strlen").call_import("strlen").ret();
  auto lib = std::make_shared<Binary>(lb.link());

  ImageRewriter rw(fx.img);
  uint64_t base = rw.inject_library(lib);
  uint64_t got_addr = base + lib->got_slot_offset(0);
  uint64_t strlen_addr = fx.img.read_u64(got_addr);

  const image::ModuleImage* libc = fx.img.module_named("libc.so");
  ASSERT_NE(libc, nullptr);
  EXPECT_EQ(strlen_addr,
            libc->base + libc->binary->find_symbol("strlen")->value);
  EXPECT_GT(rw.relocs_applied(), 0u);
}

TEST(Rewriter, InjectUnresolvedImportThrows) {
  Fixture fx;
  melf::ProgramBuilder lb("libbad.so");
  lb.func("f").call_import("no_such_fn").ret();
  auto lib = std::make_shared<Binary>(lb.link());
  ImageRewriter rw(fx.img);
  EXPECT_THROW(rw.inject_library(lib), StateError);
}

TEST(Rewriter, UnloadLibraryRemovesVmasAndModule) {
  Fixture fx;
  ImageRewriter rw(fx.img);
  auto lib = core::build_redirect_lib(8);
  uint64_t base = rw.inject_library(lib);
  size_t vmas_with = fx.img.vmas.size();
  rw.unload_library(core::kSigLibName);
  EXPECT_EQ(fx.img.module_named(core::kSigLibName), nullptr);
  EXPECT_LT(fx.img.vmas.size(), vmas_with);
  EXPECT_EQ(fx.img.vma_at(base), nullptr);
  EXPECT_THROW(rw.unload_library("gone"), StateError);
}

TEST(Rewriter, SymbolAddrErrors) {
  Fixture fx;
  ImageRewriter rw(fx.img);
  EXPECT_THROW(rw.symbol_addr("nomod", "x"), StateError);
  EXPECT_THROW(rw.symbol_addr("toysrv", "nosym"), StateError);
  EXPECT_EQ(rw.symbol_addr("toysrv", "dispatch"), fx.sym("dispatch"));
}

TEST(Rewriter, PatchedImageExecutesTrapAfterRestore) {
  // End-to-end of the primitive: patch handle_b's first byte, restore, send
  // "B" — the process must die with SIGTRAP (no handler installed).
  Fixture fx;
  ImageRewriter rw(fx.img);
  rw.block_first_byte(fx.sym("handle_b"));
  image::restore(fx.vos, {.pid = fx.pid, .img = &fx.img});

  auto conn = fx.vos.connect(80);
  conn.send("A\n");
  fx.vos.run();
  EXPECT_EQ(conn.recv_all(), "alpha\n");  // feature A unaffected

  conn.send("B\n");
  fx.vos.run();
  EXPECT_EQ(fx.vos.process(fx.pid)->term_signal, os::sig::kSigTrap);
}

TEST(Rewriter, InjectedRedirectLibWorksInGuest) {
  // Manual wiring of what DynaCut::disable_feature automates: trap on the
  // dispatch arm for B and redirect to dispatch_err.
  Fixture fx;
  ImageRewriter rw(fx.img);

  // Find the arm_b block: it is the call-site block inside dispatch. We
  // patch handle_b's entry instead and redirect to dispatch_err — different
  // functions — to confirm the mechanism is offset-agnostic at this layer.
  uint64_t trap_addr = fx.sym("handle_b");
  uint64_t target = fx.sym("dispatch_err");
  rw.block_first_byte(trap_addr);

  uint64_t base = rw.inject_library(core::build_redirect_lib(4));
  (void)base;
  uint64_t count = rw.symbol_addr(core::kSigLibName, "redirect_count");
  uint64_t table = rw.symbol_addr(core::kSigLibName, "redirect_table");
  fx.img.write_u64(table, trap_addr);
  fx.img.write_u64(table + 8, target);
  fx.img.write_u64(count, 1);
  rw.set_sigaction(os::sig::kSigTrap,
                   rw.symbol_addr(core::kSigLibName, "dynacut_handler"),
                   rw.symbol_addr(core::kSigLibName, "dynacut_restorer"));
  image::restore(fx.vos, {.pid = fx.pid, .img = &fx.img});

  auto conn = fx.vos.connect(80);
  conn.send("B\n");
  fx.vos.run();
  // Redirected into the error path: "err" instead of "beta", still alive.
  EXPECT_EQ(conn.recv_all(), "err\n");
  EXPECT_EQ(fx.vos.process(fx.pid)->term_signal, 0);
  conn.send("A\nQ\n");
  fx.vos.run();
  EXPECT_EQ(conn.recv_all(), "alpha\n");
  EXPECT_TRUE(fx.vos.all_exited());
}

}  // namespace
}  // namespace dynacut::rw
