// Tests for the interprocedural feature slicer (src/analysis/slicer):
// dataflow lattice and per-function facts, indirect-target resolution
// (PLT / jump table / exact offset / unresolved), feature_slice closure
// witnesses, plan expansion, the cutcheck rule matrix CC007–CC012 (one
// guest that trips each rule and one near-miss that must not), per-rule
// CheckOptions knobs, and the DynaCut expand_to_slice integration.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/cutcheck/checker.hpp"
#include "analysis/slicer/dataflow.hpp"
#include "analysis/slicer/slicer.hpp"
#include "apps/libc.hpp"
#include "apps/minikv.hpp"
#include "apps/miniweb.hpp"
#include "common/error.hpp"
#include "core/dynacut.hpp"
#include "melf/builder.hpp"
#include "obs/bus.hpp"
#include "os/os.hpp"
#include "test_guests.hpp"

namespace dynacut {
namespace {

namespace slicer = analysis::slicer;
namespace cutcheck = analysis::cutcheck;
using analysis::CfgBlock;
using analysis::CovBlock;
using cutcheck::CheckOptions;
using cutcheck::CheckReport;
using cutcheck::CutPlan;
using cutcheck::Removal;
using cutcheck::Severity;
using cutcheck::Trap;
using melf::ProgramBuilder;
using slicer::AbsVal;

// --- helpers -------------------------------------------------------------

CutPlan make_plan(std::shared_ptr<const melf::Binary> bin,
                  std::vector<CovBlock> blocks, Removal removal, Trap trap) {
  CutPlan p;
  p.feature = "test";
  p.module = bin->name;
  p.binary = std::move(bin);
  p.blocks = std::move(blocks);
  p.removal = removal;
  p.trap = trap;
  return p;
}

size_t rule_count(const CheckReport& r, const char* rule, Severity sev) {
  size_t n = 0;
  for (const cutcheck::Diagnostic* d : r.by_rule(rule)) {
    if (d->severity == sev) ++n;
  }
  return n;
}

bool rule_mentions(const CheckReport& r, const char* rule,
                   const std::string& text) {
  for (const cutcheck::Diagnostic* d : r.by_rule(rule)) {
    if (d->message.find(text) != std::string::npos) return true;
  }
  return false;
}

/// Block start + size of the CFG block starting at `off`.
CovBlock whole_block(const slicer::SliceModel& m, const std::string& module,
                     uint64_t off) {
  const CfgBlock* blk = m.cfg.block_at(off);
  EXPECT_NE(blk, nullptr) << "no block at " << off;
  return {module, off, blk != nullptr ? blk->size : 1};
}

// --- test guests ---------------------------------------------------------

/// drive() calls through a two-entry function-pointer table in .data:
/// the canonical jump-table shape the slicer must enumerate.
std::shared_ptr<const melf::Binary> build_table_guest() {
  ProgramBuilder b("tbl");
  b.func("alpha").mov_ri(0, 1).ret();
  b.func("beta").mov_ri(0, 2).ret();
  auto& d = b.func("drive");
  d.shl_ri(1, 3)        // r1 = index * 8 (index statically unknown)
      .lea_sym(2, "tbl")
      .add_rr(2, 1)     // table base + unknown delta
      .load(3, 2, 0)    // table_val(tbl)
      .callr(3)
      .ret();
  b.data_ptr("tbl", "alpha");
  b.data_ptr("tbl_1", "beta");  // contiguous with "tbl": one 2-entry table
  b.set_entry("drive");
  return std::make_shared<melf::Binary>(b.link());
}

/// go() register-calls one exact function address (kDirect).
std::shared_ptr<const melf::Binary> build_direct_guest() {
  ProgramBuilder b("dir");
  b.func("target_fn").mov_ri(0, 7).ret();
  auto& g = b.func("go");
  g.lea_sym(1, "target_fn").callr(1).ret();
  b.set_entry("go");
  return std::make_shared<melf::Binary>(b.link());
}

/// go() calls through a pointer read from writable bss — statically
/// unresolvable, which must pin the module against slice expansion.
std::shared_ptr<const melf::Binary> build_unresolved_guest() {
  ProgramBuilder b("unres");
  b.bss("fp", 8);
  auto& g = b.func("go");
  g.mov_sym(1, "fp").load(2, 1, 0).callr(2).ret();
  b.func("spare").mov_ri(0, 3).ret();
  b.set_entry("go");
  return std::make_shared<melf::Binary>(b.link());
}

/// go() tail-jumps to the mark "inner" in the middle of victim's only
/// block — a resolved indirect target that is not a block entry.
std::shared_ptr<const melf::Binary> build_interior_target_guest() {
  ProgramBuilder b("esc");
  auto& f = b.func("victim");
  f.mov_ri(0, 1).mark("inner").mov_ri(0, 2).ret();
  auto& g = b.func("go");
  g.lea_sym(1, "inner").jmpr(1);
  b.set_entry("go");
  return std::make_shared<melf::Binary>(b.link());
}

/// A .data pointer aimed at the mark "vt_inner" inside victim; no code
/// references it, so only CC009 can see the hazard.
std::shared_ptr<const melf::Binary> build_data_pointer_guest() {
  ProgramBuilder b("dptr");
  auto& f = b.func("victim");
  f.mov_ri(0, 1).mark("vt_inner").mov_ri(0, 2).ret();
  b.func("keeper").mov_ri(0, 0).ret();
  b.data_ptr("vt", "vt_inner");
  b.set_entry("keeper");
  return std::make_shared<melf::Binary>(b.link());
}

/// f() has an error stub at depth 0 ("f_err") plus a block at depth -8
/// ("f_site", inside a push/pop pair) and one at depth 0 ("f_deep").
std::shared_ptr<const melf::Binary> build_stack_guest() {
  ProgramBuilder b("stk");
  auto& f = b.func("f");
  f.cmp_ri(1, 0).je("err_lbl");
  f.mark("f_deep").push(12).cmp_ri(1, 1).je("site").pop(12).ret();
  f.label("site").mark("f_site").pop(12).mov_ri(0, 1).ret();
  f.label("err_lbl").mark("f_err").mov_ri(0, 9).ret();
  b.set_entry("f");
  return std::make_shared<melf::Binary>(b.link());
}

/// writer() stores to 'stat', reader() is its only resolvable reader.
std::shared_ptr<const melf::Binary> build_store_guest() {
  ProgramBuilder b("ds");
  b.bss("stat", 8);
  b.func("writer").mov_sym(1, "stat").mov_ri(2, 7).store(1, 0, 2).ret();
  b.func("reader").mov_sym(1, "stat").load(2, 1, 0).ret();
  b.func("main").call("writer").call("reader").mov_ri(0, 0).ret();
  b.set_entry("main");
  return std::make_shared<melf::Binary>(b.link());
}

/// The dispatch block that calls handle_a — the natural coverage seed for
/// "feature A" and the anchor of most closure tests.
uint64_t arm_a_block(const slicer::SliceModel& m,
                     const melf::Binary& bin) {
  uint64_t ha = bin.find_symbol("handle_a")->value;
  auto it = m.deps.callers.find(ha);
  EXPECT_TRUE(it != m.deps.callers.end() && it->second.size() == 1);
  return it->second.front();
}

// --- dataflow: lattice and per-function facts ----------------------------

TEST(DataflowTest, JoinLattice) {
  EXPECT_EQ(join(AbsVal::konst(5), AbsVal::konst(5)), AbsVal::konst(5));
  EXPECT_EQ(join(AbsVal::konst(1), AbsVal::konst(2)), AbsVal::unknown());
  EXPECT_EQ(join(AbsVal::mod_off(0x40), AbsVal::mod_off(0x10)),
            AbsVal::mod_off_var(0x10));
  EXPECT_EQ(join(AbsVal::unknown(), AbsVal::mod_off(8)), AbsVal::unknown());
  EXPECT_EQ(join(AbsVal::import(3), AbsVal::import(3)), AbsVal::import(3));
}

TEST(DataflowTest, StackDepthsAndLiveness) {
  auto bin = build_stack_guest();
  analysis::StaticCfg cfg = analysis::recover_cfg(*bin);
  auto funcs = analysis::split_functions(cfg, *bin);
  uint64_t entry = bin->find_symbol("f")->value;
  ASSERT_TRUE(funcs.count(entry));
  slicer::FuncDataflow fd = slicer::analyze_function(*bin, cfg, funcs.at(entry));

  uint64_t deep = bin->find_symbol("f_deep")->value;
  uint64_t site = bin->find_symbol("f_site")->value;
  uint64_t err = bin->find_symbol("f_err")->value;
  ASSERT_TRUE(fd.depth_in.count(deep));
  EXPECT_EQ(fd.depth_in.at(deep), 0);
  EXPECT_EQ(fd.depth_in.at(site), -8);  // inside the push(12) frame
  EXPECT_EQ(fd.depth_in.at(err), 0);
  EXPECT_EQ(fd.facts.at(deep).stack_delta, -8);  // push, branch out
  // The entry block compares r1 before writing it.
  EXPECT_TRUE(fd.facts.at(entry).use_mask & (1u << 1));
  EXPECT_TRUE(fd.live_in.at(entry) & (1u << 1));
}

TEST(DataflowTest, ResolvableAccessesBecomeMemRefs) {
  auto bin = build_store_guest();
  slicer::SliceModel m = slicer::analyze(*bin);
  uint64_t stat = bin->find_symbol("stat")->value;
  bool saw_store = false, saw_load = false;
  for (const auto& ref : m.mdf.mem_refs) {
    if (ref.target != stat) continue;
    EXPECT_TRUE(ref.exact);
    (ref.is_store ? saw_store : saw_load) = true;
  }
  EXPECT_TRUE(saw_store);
  EXPECT_TRUE(saw_load);
}

// --- indirect-target resolution ------------------------------------------

TEST(IndirectResolutionTest, PltStubsResolveToImports) {
  auto bin = dynacut::testing::build_toysrv();
  slicer::SliceModel m = slicer::analyze(*bin);
  EXPECT_TRUE(m.all_indirect_resolved);
  const std::set<std::string> imports = {"memset", "write_str", "recv_line",
                                         "strncmp"};
  ASSERT_FALSE(m.indirect.empty());
  for (const auto& site : m.indirect) {
    EXPECT_EQ(site.kind, slicer::IndirectSite::Kind::kPltImport);
    EXPECT_TRUE(imports.count(site.import_name))
        << "unexpected import " << site.import_name;
  }
}

TEST(IndirectResolutionTest, JumpTableEnumeratesTargets) {
  auto bin = build_table_guest();
  slicer::SliceModel m = slicer::analyze(*bin);
  EXPECT_TRUE(m.all_indirect_resolved);
  const slicer::IndirectSite* table = nullptr;
  for (const auto& s : m.indirect) {
    if (s.kind == slicer::IndirectSite::Kind::kTable) table = &s;
  }
  ASSERT_NE(table, nullptr);
  EXPECT_TRUE(table->is_call);
  std::vector<uint64_t> want = {bin->find_symbol("alpha")->value,
                                bin->find_symbol("beta")->value};
  EXPECT_EQ(table->targets, want);
}

TEST(IndirectResolutionTest, ExactOffsetResolvesToOneTarget) {
  auto bin = build_direct_guest();
  slicer::SliceModel m = slicer::analyze(*bin);
  EXPECT_TRUE(m.all_indirect_resolved);
  const slicer::IndirectSite* direct = nullptr;
  for (const auto& s : m.indirect) {
    if (s.kind == slicer::IndirectSite::Kind::kDirect) direct = &s;
  }
  ASSERT_NE(direct, nullptr);
  std::vector<uint64_t> want = {bin->find_symbol("target_fn")->value};
  EXPECT_EQ(direct->targets, want);
  // A resolved function-entry target is a caller edge, not a pinned one.
  EXPECT_TRUE(m.pinned_functions.empty());
  EXPECT_EQ(m.deps.callers.at(want[0]).size(), 1u);
}

TEST(IndirectResolutionTest, EscapedPointerStaysUnresolved) {
  auto bin = build_unresolved_guest();
  slicer::SliceModel m = slicer::analyze(*bin);
  EXPECT_FALSE(m.all_indirect_resolved);
  bool saw = false;
  for (const auto& s : m.indirect) {
    if (s.kind == slicer::IndirectSite::Kind::kUnresolved) saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(IndirectResolutionTest, AppsGuestsFullyResolve) {
  // Acceptance bar: the real guests in src/apps must resolve every
  // indirect transfer (their only register jumps are PLT stubs).
  for (auto bin : {apps::build_minikv(), apps::build_miniweb()}) {
    slicer::SliceModel m = slicer::analyze(*bin);
    EXPECT_TRUE(m.all_indirect_resolved) << bin->name;
  }
}

// --- feature_slice closure -----------------------------------------------

TEST(FeatureSliceTest, ClosurePullsDominatedAndExclusiveCallees) {
  auto bin = dynacut::testing::build_toysrv();
  slicer::SliceModel m = slicer::analyze(*bin);
  uint64_t arm = arm_a_block(m, *bin);
  uint64_t ha = bin->find_symbol("handle_a")->value;

  slicer::FeatureSlice slice = slicer::feature_slice(m, {arm});
  EXPECT_EQ(slice.seed_count, 1u);
  EXPECT_EQ(slice.witnesses.size(), slice.blocks.size());
  EXPECT_TRUE(slice.blocks.count(arm));
  EXPECT_TRUE(slice.blocks.count(ha)) << "handle_a not pulled by closure";
  // arm_a's fallthrough (mov r0,0; ret) is dominated by the seed.
  const CfgBlock* armblk = m.cfg.block_at(arm);
  ASSERT_NE(armblk, nullptr);
  EXPECT_TRUE(slice.blocks.count(arm + armblk->size));

  bool ha_by_call_closure = false, seed_witnessed = false;
  for (const auto& w : slice.witnesses) {
    if (w.block == ha && w.kind == slicer::Witness::Kind::kCallClosure) {
      ha_by_call_closure = true;
    }
    if (w.block == arm && w.kind == slicer::Witness::Kind::kSeed) {
      seed_witnessed = true;
    }
  }
  EXPECT_TRUE(ha_by_call_closure);
  EXPECT_TRUE(seed_witnessed);
  EXPECT_STREQ(slicer::witness_kind_name(slicer::Witness::Kind::kCallClosure),
               "call-closure");
}

TEST(FeatureSliceTest, KeepFunctionsBlocksCallClosure) {
  auto bin = dynacut::testing::build_toysrv();
  slicer::SliceModel m = slicer::analyze(*bin);
  uint64_t arm = arm_a_block(m, *bin);
  slicer::SliceOptions opts;
  opts.keep_functions.insert("handle_a");
  slicer::FeatureSlice slice = slicer::feature_slice(m, {arm}, opts);
  EXPECT_FALSE(slice.blocks.count(bin->find_symbol("handle_a")->value));
  EXPECT_GT(slice.blocks.size(), 1u);  // the dominated fallthrough still joins
}

TEST(FeatureSliceTest, UnresolvedModuleExpandsToSeedsOnly) {
  auto bin = build_unresolved_guest();
  slicer::SliceModel m = slicer::analyze(*bin);
  uint64_t spare = bin->find_symbol("spare")->value;
  slicer::FeatureSlice slice = slicer::feature_slice(m, {spare});
  EXPECT_EQ(slice.blocks, std::set<uint64_t>{spare});
  ASSERT_EQ(slice.witnesses.size(), 1u);
  EXPECT_EQ(slice.witnesses[0].kind, slicer::Witness::Kind::kSeed);
}

TEST(FeatureSliceTest, ExpandPlanIsIdempotent) {
  auto bin = dynacut::testing::build_toysrv();
  slicer::SliceModel m = slicer::analyze(*bin);
  uint64_t arm = arm_a_block(m, *bin);
  CutPlan plan = make_plan(bin, {whole_block(m, "toysrv", arm)},
                           Removal::kBlockFirstByte, Trap::kTerminate);
  slicer::PlanExpansion first = slicer::expand_plan(plan);
  EXPECT_EQ(first.seed_blocks, 1u);
  EXPECT_GT(first.slice_blocks, first.seed_blocks);
  EXPECT_EQ(first.witnesses, first.slice_blocks - first.seed_blocks);
  EXPECT_EQ(plan.blocks.size(), first.slice_blocks);

  slicer::PlanExpansion second = slicer::expand_plan(plan);
  EXPECT_EQ(second.seed_blocks, first.slice_blocks);
  EXPECT_EQ(second.slice_blocks, first.slice_blocks);  // fixpoint reached
  EXPECT_EQ(second.witnesses, 0u);
}

TEST(FeatureSliceTest, SynthesizePlanIsSliceClosedAndClean) {
  auto bin = dynacut::testing::build_toysrv();
  slicer::SliceModel m = slicer::analyze(*bin);
  uint64_t arm = arm_a_block(m, *bin);
  CutPlan plan = slicer::synthesize_plan(
      bin, "toysrv", "feature-a", {whole_block(m, "toysrv", arm)},
      Removal::kBlockFirstByte, Trap::kTerminate);
  EXPECT_EQ(plan.module, "toysrv");
  EXPECT_EQ(plan.feature, "feature-a");
  EXPECT_GT(plan.blocks.size(), 1u);
  CheckReport r = cutcheck::check_plan(plan);
  EXPECT_TRUE(r.ok()) << r.format();
  EXPECT_EQ(rule_count(r, cutcheck::kRulePartialSlice, Severity::kNote), 0u);
}

// --- CC007 indirect-escape -----------------------------------------------

TEST(RuleIndirectTest, ResolvedTargetInWipedInteriorTrips) {
  auto bin = build_interior_target_guest();
  slicer::SliceModel m = slicer::analyze(*bin);
  uint64_t victim = bin->find_symbol("victim")->value;
  CheckReport r = cutcheck::check_plan(
      make_plan(bin, {whole_block(m, "esc", victim)}, Removal::kWipeBlocks,
                Trap::kTerminate));
  EXPECT_EQ(rule_count(r, cutcheck::kRuleIndirect, Severity::kWarning), 1u);
  EXPECT_TRUE(rule_mentions(r, cutcheck::kRuleIndirect, "interior"));
}

TEST(RuleIndirectTest, TargetAtRangeStartDoesNotTrip) {
  auto bin = build_interior_target_guest();
  uint64_t victim = bin->find_symbol("victim")->value;
  uint64_t inner = bin->find_symbol("inner")->value;
  uint64_t end = victim + bin->find_symbol("victim")->size;
  // The cut starts exactly at the indirect target: the trap handler
  // recognises it, so CC007 must stay silent.
  CheckReport r = cutcheck::check_plan(
      make_plan(bin, {{"esc", inner, static_cast<uint32_t>(end - inner)}},
                Removal::kWipeBlocks, Trap::kTerminate));
  EXPECT_EQ(r.by_rule(cutcheck::kRuleIndirect).size(), 0u);
}

TEST(RuleIndirectTest, UnresolvedSiteWarnsOnlyWhenSomethingIsCut) {
  auto bin = build_unresolved_guest();
  slicer::SliceModel m = slicer::analyze(*bin);
  uint64_t spare = bin->find_symbol("spare")->value;
  CheckReport cut = cutcheck::check_plan(
      make_plan(bin, {whole_block(m, "unres", spare)}, Removal::kWipeBlocks,
                Trap::kTerminate));
  EXPECT_EQ(rule_count(cut, cutcheck::kRuleIndirect, Severity::kWarning), 1u);
  EXPECT_TRUE(rule_mentions(cut, cutcheck::kRuleIndirect, "resolved"));

  // Zero CC007 findings on an uncut binary (the false-positive bar).
  CheckReport uncut = cutcheck::check_plan(
      make_plan(bin, {}, Removal::kWipeBlocks, Trap::kTerminate));
  EXPECT_EQ(uncut.by_rule(cutcheck::kRuleIndirect).size(), 0u);
}

// --- CC008 partial-slice -------------------------------------------------

TEST(RulePartialSliceTest, SeedOnlyPlanGetsSliceNote) {
  auto bin = dynacut::testing::build_toysrv();
  slicer::SliceModel m = slicer::analyze(*bin);
  uint64_t arm = arm_a_block(m, *bin);
  CheckReport r = cutcheck::check_plan(
      make_plan(bin, {whole_block(m, "toysrv", arm)},
                Removal::kBlockFirstByte, Trap::kTerminate));
  EXPECT_TRUE(r.ok()) << r.format();  // a note, never a rejection
  EXPECT_EQ(rule_count(r, cutcheck::kRulePartialSlice, Severity::kNote), 1u);
  EXPECT_TRUE(
      rule_mentions(r, cutcheck::kRulePartialSlice, "dead-but-reachable"));
  EXPECT_NE(r.by_rule(cutcheck::kRulePartialSlice)
                .front()
                ->fix_hint.find("expand_to_slice"),
            std::string::npos);
}

TEST(RulePartialSliceTest, SliceClosedPlanDoesNotTrip) {
  auto bin = dynacut::testing::build_toysrv();
  slicer::SliceModel m = slicer::analyze(*bin);
  uint64_t arm = arm_a_block(m, *bin);
  CutPlan plan = make_plan(bin, {whole_block(m, "toysrv", arm)},
                           Removal::kBlockFirstByte, Trap::kTerminate);
  slicer::expand_plan(plan);
  CheckReport r = cutcheck::check_plan(plan);
  EXPECT_TRUE(r.ok()) << r.format();
  EXPECT_EQ(r.by_rule(cutcheck::kRulePartialSlice).size(), 0u);
}

// --- CC009 data-reach ----------------------------------------------------

TEST(RuleDataReachTest, SurvivingDataPointerIntoCutTrips) {
  auto bin = build_data_pointer_guest();
  slicer::SliceModel m = slicer::analyze(*bin);
  uint64_t victim = bin->find_symbol("victim")->value;
  CheckReport r = cutcheck::check_plan(
      make_plan(bin, {whole_block(m, "dptr", victim)}, Removal::kWipeBlocks,
                Trap::kVerify));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(rule_count(r, cutcheck::kRuleDataReach, Severity::kError), 1u);
  EXPECT_TRUE(rule_mentions(r, cutcheck::kRuleDataReach, "data pointer"));
}

TEST(RuleDataReachTest, PointerOntoRangeStartDoesNotTrip) {
  auto bin = build_data_pointer_guest();
  uint64_t inner = bin->find_symbol("vt_inner")->value;
  const melf::Symbol* victim = bin->find_symbol("victim");
  uint64_t end = victim->value + victim->size;
  CheckReport r = cutcheck::check_plan(
      make_plan(bin, {{"dptr", inner, static_cast<uint32_t>(end - inner)}},
                Removal::kWipeBlocks, Trap::kVerify));
  EXPECT_EQ(r.by_rule(cutcheck::kRuleDataReach).size(), 0u);
}

// --- CC010 stack-imbalance -----------------------------------------------

TEST(RuleStackImbalanceTest, RedirectAcrossFrameTrips) {
  auto bin = build_stack_guest();
  uint64_t site = bin->find_symbol("f_site")->value;
  CutPlan p = make_plan(bin, {{"stk", site, 1}}, Removal::kBlockFirstByte,
                        Trap::kRedirect);
  p.has_redirect = true;
  p.redirect_offset = bin->find_symbol("f_err")->value;
  CheckReport r = cutcheck::check_plan(p);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(rule_count(r, cutcheck::kRuleStackImbalance, Severity::kError),
            1u);
  EXPECT_TRUE(rule_mentions(r, cutcheck::kRuleStackImbalance, "depth"));
}

TEST(RuleStackImbalanceTest, MatchingDepthDoesNotTrip) {
  auto bin = build_stack_guest();
  uint64_t deep = bin->find_symbol("f_deep")->value;  // depth 0, like f_err
  CutPlan p = make_plan(bin, {{"stk", deep, 1}}, Removal::kBlockFirstByte,
                        Trap::kRedirect);
  p.has_redirect = true;
  p.redirect_offset = bin->find_symbol("f_err")->value;
  CheckReport r = cutcheck::check_plan(p);
  EXPECT_EQ(r.by_rule(cutcheck::kRuleStackImbalance).size(), 0u);
  EXPECT_EQ(r.by_rule(cutcheck::kRuleStubReach).size(), 0u);  // stub reachable
  EXPECT_TRUE(r.ok()) << r.format();
}

// --- CC011 dead-store ----------------------------------------------------

TEST(RuleDeadStoreTest, OrphanedWritersGetNote) {
  auto bin = build_store_guest();
  slicer::SliceModel m = slicer::analyze(*bin);
  uint64_t reader = bin->find_symbol("reader")->value;
  CheckReport r = cutcheck::check_plan(
      make_plan(bin, {whole_block(m, "ds", reader)},
                Removal::kBlockFirstByte, Trap::kTerminate));
  EXPECT_TRUE(r.ok()) << r.format();  // shrink hint, not a rejection
  ASSERT_EQ(rule_count(r, cutcheck::kRuleDeadStore, Severity::kNote), 1u);
  const cutcheck::Diagnostic* d =
      r.by_rule(cutcheck::kRuleDeadStore).front();
  uint64_t stat = bin->find_symbol("stat")->value;
  EXPECT_EQ(d->offset, stat);
  EXPECT_EQ(d->end_offset, stat + 8);  // the diagnostic carries the range
  EXPECT_NE(d->format().find(".."), std::string::npos);
}

TEST(RuleDeadStoreTest, CuttingWritersTooDoesNotTrip) {
  auto bin = build_store_guest();
  slicer::SliceModel m = slicer::analyze(*bin);
  CheckReport r = cutcheck::check_plan(make_plan(
      bin,
      {whole_block(m, "ds", bin->find_symbol("reader")->value),
       whole_block(m, "ds", bin->find_symbol("writer")->value)},
      Removal::kBlockFirstByte, Trap::kTerminate));
  EXPECT_EQ(r.by_rule(cutcheck::kRuleDeadStore).size(), 0u);
}

// --- CC012 stub-reach ----------------------------------------------------

TEST(RuleStubReachTest, RedirectOverUnmapTrips) {
  auto bin = build_stack_guest();
  uint64_t deep = bin->find_symbol("f_deep")->value;
  CutPlan p = make_plan(bin, {{"stk", deep, 1}}, Removal::kUnmapPages,
                        Trap::kRedirect);
  p.has_redirect = true;
  p.redirect_offset = bin->find_symbol("f_err")->value;
  CheckReport r = cutcheck::check_plan(p);
  EXPECT_GE(rule_count(r, cutcheck::kRuleStubReach, Severity::kError), 1u);
  EXPECT_TRUE(rule_mentions(r, cutcheck::kRuleStubReach, "SIGSEGV"));
}

TEST(RuleStubReachTest, CuttingTheStubItselfTrips) {
  auto bin = build_stack_guest();
  uint64_t err = bin->find_symbol("f_err")->value;
  CutPlan p = make_plan(bin, {{"stk", err, 1}}, Removal::kBlockFirstByte,
                        Trap::kRedirect);
  p.has_redirect = true;
  p.redirect_offset = err;
  CheckReport r = cutcheck::check_plan(p);
  EXPECT_GE(rule_count(r, cutcheck::kRuleStubReach, Severity::kError), 1u);
  EXPECT_TRUE(rule_mentions(r, cutcheck::kRuleStubReach, "itself removed"));
}

// --- per-rule CheckOptions knobs -----------------------------------------

TEST(CheckOptionsTest, SuppressDropsARulesFindings) {
  auto bin = build_data_pointer_guest();
  slicer::SliceModel m = slicer::analyze(*bin);
  CutPlan p = make_plan(bin,
                        {whole_block(m, "dptr",
                                     bin->find_symbol("victim")->value)},
                        Removal::kWipeBlocks, Trap::kVerify);
  CheckOptions opts;
  opts.suppress.insert(cutcheck::kRuleDataReach);
  CheckReport r = cutcheck::check_plan(p, opts);
  EXPECT_EQ(r.by_rule(cutcheck::kRuleDataReach).size(), 0u);
  EXPECT_TRUE(r.ok()) << r.format();  // CC009 was the only error
}

TEST(CheckOptionsTest, SeverityOverrideStagesRuleWarnOnly) {
  auto bin = build_data_pointer_guest();
  slicer::SliceModel m = slicer::analyze(*bin);
  CutPlan p = make_plan(bin,
                        {whole_block(m, "dptr",
                                     bin->find_symbol("victim")->value)},
                        Removal::kWipeBlocks, Trap::kVerify);
  CheckOptions opts;
  opts.severity_override[cutcheck::kRuleDataReach] = Severity::kWarning;
  CheckReport r = cutcheck::check_plan(p, opts);
  EXPECT_EQ(rule_count(r, cutcheck::kRuleDataReach, Severity::kWarning), 1u);
  EXPECT_EQ(rule_count(r, cutcheck::kRuleDataReach, Severity::kError), 0u);
  EXPECT_TRUE(r.ok()) << r.format();
}

TEST(DiagnosticsTest, FindingsCarryEnclosingFunction) {
  auto bin = build_interior_target_guest();
  slicer::SliceModel m = slicer::analyze(*bin);
  CheckReport r = cutcheck::check_plan(
      make_plan(bin, {whole_block(m, "esc",
                                  bin->find_symbol("victim")->value)},
                Removal::kWipeBlocks, Trap::kTerminate));
  ASSERT_GE(r.by_rule(cutcheck::kRuleIndirect).size(), 1u);
  const cutcheck::Diagnostic* d = r.by_rule(cutcheck::kRuleIndirect).front();
  EXPECT_EQ(d->function, "victim");
  EXPECT_NE(d->format().find("(in 'victim')"), std::string::npos);
  EXPECT_NE(d->format().find("esc+0x"), std::string::npos);
}

// --- DynaCut integration: CutRequest.expand_to_slice ---------------------

struct CollectSink : obs::Sink {
  std::vector<obs::Event> events;
  void on_event(const obs::Event& e) override { events.push_back(e); }
};

struct BootedToysrv {
  os::Os vos;
  int pid = 0;
  std::shared_ptr<const melf::Binary> bin;

  BootedToysrv() {
    bin = dynacut::testing::build_toysrv();
    pid = vos.spawn(bin, {apps::build_libc()});
    vos.run();
  }
};

TEST(DynaCutSliceTest, ExpandToSliceGrowsCutChargesAnalysisAndEmitsEvent) {
  BootedToysrv t;
  core::DynaCut dc(t.vos, t.pid);
  obs::EventBus bus;
  CollectSink sink;
  bus.add_sink(&sink);
  dc.set_observer(&bus);

  slicer::SliceModel m = slicer::analyze(*t.bin);
  uint64_t arm = arm_a_block(m, *t.bin);
  core::FeatureSpec spec;
  spec.name = "feature-a";
  spec.blocks = {whole_block(m, "toysrv", arm)};

  core::CutRequest req;
  req.feature = spec;
  req.expand_to_slice = true;
  core::CustomizeReport rep = dc.disable_feature(req);
  EXPECT_TRUE(dc.feature_disabled("feature-a"));
  EXPECT_GT(rep.edits.blocks_patched, 1u);       // grew past the seed
  EXPECT_GT(rep.timing.analysis_ns, 0u);         // slicer cost charged
  // analysis_ns is offline work, not service interruption.
  core::TimingBreakdown only_analysis;
  only_analysis.analysis_ns = rep.timing.analysis_ns;
  EXPECT_EQ(only_analysis.total_ns(), 0u);

  const obs::Event* expand = nullptr;
  for (const auto& e : sink.events) {
    if (e.type == obs::ev::kSliceExpand) expand = &e;
  }
  ASSERT_NE(expand, nullptr);
  EXPECT_EQ(expand->attr_str("feature"), "feature-a");
  EXPECT_GT(expand->attr_u64("slice_blocks"), expand->attr_u64("seed_blocks"));
  EXPECT_GT(expand->attr_u64("witnesses"), 0u);

  dc.restore_feature("feature-a");
  EXPECT_FALSE(dc.feature_disabled("feature-a"));
}

TEST(DynaCutSliceTest, ObservedOnlyRequestStillPatchesJustTheSeed) {
  BootedToysrv t;
  core::DynaCut dc(t.vos, t.pid);
  slicer::SliceModel m = slicer::analyze(*t.bin);
  core::FeatureSpec spec;
  spec.name = "feature-a";
  spec.blocks = {whole_block(m, "toysrv", arm_a_block(m, *t.bin))};
  core::CutRequest req;
  req.feature = spec;
  core::CustomizeReport rep = dc.disable_feature(req);
  EXPECT_EQ(rep.edits.blocks_patched, 1u);
  EXPECT_EQ(rep.timing.analysis_ns, 0u);
}

TEST(DynaCutSliceTest, RequestCheckOptionsReachPreflight) {
  BootedToysrv t;
  core::DynaCut dc(t.vos, t.pid);
  core::CutRequest req;
  req.feature.name = "feature-a";
  slicer::SliceModel m = slicer::analyze(*t.bin);
  req.feature.blocks = {whole_block(m, "toysrv", arm_a_block(m, *t.bin))};
  CheckReport with_note = dc.preflight(req);
  EXPECT_EQ(rule_count(with_note, cutcheck::kRulePartialSlice,
                       Severity::kNote),
            1u);
  req.check_options.suppress.insert(cutcheck::kRulePartialSlice);
  CheckReport suppressed = dc.preflight(req);
  EXPECT_EQ(suppressed.by_rule(cutcheck::kRulePartialSlice).size(), 0u);
}

}  // namespace
}  // namespace dynacut
