// Stub cuts (Mechanism::kStub/kAuto): callsite/PLT redirection to an
// injected deny stub must serve disabled-feature probes without a single
// SIGTRAP, flip to and from the trap mechanism under GroupTxn, survive the
// full fault-injection matrix with bit-identical rollback, and carry the
// same feature/policy observability as trap hits.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <tuple>

#include "analysis/coverage.hpp"
#include "apps/libc.hpp"
#include "core/dynacut.hpp"
#include "core/handler_lib.hpp"
#include "melf/builder.hpp"
#include "obs/bus.hpp"
#include "obs/registry.hpp"
#include "obs/sinks.hpp"
#include "os/os.hpp"
#include "test_guests.hpp"
#include "trace/trace.hpp"

namespace dynacut::core {
namespace {

using analysis::CovBlock;

// ---------------------------------------------------------------------------
// Rig: toysrv with the feature spec narrowed to the callee function, so the
// deny is purely the redirected `call handle_b` (the dispatcher arm stays
// live and its continuation runs after the stub returns).
// ---------------------------------------------------------------------------

struct StubPipeline {
  os::Os vos;
  int pid = 0;
  std::shared_ptr<const melf::Binary> bin;
  FeatureSpec handle_b_spec;
  os::HostConn conn;

  StubPipeline() {
    bin = testing::build_toysrv();
    auto trace_requests = [&](const std::string& reqs) {
      os::Os prof;
      trace::Tracer tracer(prof);
      int p = prof.spawn(testing::build_toysrv(), {apps::build_libc()});
      prof.run();
      auto c = prof.connect(80);
      c.send(reqs);
      prof.run();
      return tracer.dump(p);
    };
    trace::TraceLog undesired = trace_requests("A\nB\nQ\n");
    trace::TraceLog wanted = trace_requests("A\nA\nQ\n");

    const melf::Symbol* hb = bin->find_symbol("handle_b");
    handle_b_spec.name = "B";
    for (const auto& b :
         analysis::feature_diff({undesired}, {wanted}, "toysrv").blocks()) {
      if (b.offset >= hb->value && b.offset < hb->value + hb->size) {
        handle_b_spec.blocks.push_back(b);
      }
    }

    pid = vos.spawn(bin, {apps::build_libc()});
    vos.run();
    conn = vos.connect(80);
  }

  std::string request(const std::string& line) {
    conn.send(line);
    vos.run();
    return conn.recv_all();
  }

  CutRequest stub_request(TrapPolicy trap = TrapPolicy::kTerminate) {
    return CutRequest{.feature = handle_b_spec,
                      .removal = RemovalPolicy::kBlockFirstByte,
                      .trap = trap,
                      .check = CheckMode::kWarn,
                      .mechanism = CutMechanism::kStub};
  }
};

TEST(StubCut, DeniesWithoutAnySignal) {
  StubPipeline px;
  EXPECT_EQ(px.request("B\n"), "beta\n");  // enabled baseline

  DynaCut dc(px.vos, px.pid);
  CustomizeReport rep = dc.disable_feature(px.stub_request());
  EXPECT_GE(rep.edits.callsites_stubbed, 1u);
  EXPECT_GT(rep.edits.blocks_patched, 0u);  // int3 net still installed

  const uint64_t traps_before = px.vos.total_sigtraps();
  // The denied probe costs one branch: the dispatcher's continuation runs
  // (returning 0, writing nothing) and the server stays up — no SIGTRAP,
  // even though the trap policy is kTerminate.
  EXPECT_EQ(px.request("B\n"), "");
  EXPECT_EQ(px.request("B\n"), "");
  EXPECT_EQ(px.vos.process(px.pid)->term_signal, 0);
  EXPECT_EQ(px.vos.total_sigtraps(), traps_before);
  EXPECT_EQ(px.request("A\n"), "alpha\n");  // other features unaffected

  // The safety net is real: handle_b's entry byte is a trap.
  const os::Process* p = px.vos.process(px.pid);
  const os::LoadedModule* app = p->module_named("toysrv");
  uint64_t entry = app->base + px.bin->find_symbol("handle_b")->value;
  EXPECT_EQ(p->mem.peek_bytes(entry, 1)[0], 0xCC);

  // The two denied probes were counted by the stub's guest-side slot.
  EXPECT_GE(dc.poll_stub_hits(), 2u);
  EXPECT_EQ(dc.poll_stub_hits(), 0u);  // second poll: nothing new
}

TEST(StubCut, HitEventsCarryFeatureAndPolicy) {
  StubPipeline px;
  obs::EventBus bus;
  obs::RingBufferSink ring{1 << 14};
  obs::Registry reg;
  bus.add_sink(&ring);
  px.vos.set_event_bus(&bus);

  DynaCut dc(px.vos, px.pid);
  dc.set_observer(&bus, &reg);
  dc.disable_feature(px.stub_request());

  EXPECT_EQ(px.request("B\n"), "");
  EXPECT_EQ(px.request("B\n"), "");
  EXPECT_EQ(dc.poll_stub_hits(), 2u);

  // stub.hit is enriched exactly like trap.hit, so fig8/fig10 timelines
  // stay mechanism-agnostic.
  ASSERT_GE(ring.count(obs::ev::kStubHit), 1u);
  const obs::Event* hit = ring.of_type(obs::ev::kStubHit)[0];
  EXPECT_EQ(hit->pid, px.pid);
  EXPECT_EQ(hit->attr_str("feature"), "B");
  EXPECT_EQ(hit->attr_str("policy"), "terminate");
  EXPECT_GT(hit->attr_u64("addr"), 0u);
  EXPECT_EQ(hit->attr_u64("hits"), 2u);
  EXPECT_EQ(reg.counter("cut.stub_hits"), 2u);
  EXPECT_EQ(reg.counter("cut.stub_hits.B"), 2u);
  EXPECT_EQ(ring.count(obs::ev::kTrapHit), 0u);
  EXPECT_EQ(reg.counter("trap.hits"), 0u);
  EXPECT_GE(reg.counter("cut.callsites_stubbed"), 1u);
}

TEST(StubCut, RewriteStubEventsEmittedUnderTxn) {
  StubPipeline px;
  obs::EventBus bus;
  obs::RingBufferSink ring{1 << 14};
  bus.add_sink(&ring);

  DynaCut dc(px.vos, px.pid);
  dc.set_observer(&bus, nullptr);
  dc.disable_feature(px.stub_request());

  ASSERT_GE(ring.count(obs::ev::kRewriteStub), 1u);
  const obs::Event* e = ring.of_type(obs::ev::kRewriteStub)[0];
  EXPECT_EQ(e->attr_str("kind"), "branch");
  EXPECT_GT(e->attr_u64("target"), 0u);
  // Staged inside the disable transaction like every other rewrite event.
  EXPECT_NE(e->txn, 0u);
}

TEST(StubCut, MechanismFlipStubToTrapAndBack) {
  StubPipeline px;
  DynaCut dc(px.vos, px.pid);

  // Only code and GOT are patched; bss holds request buffers that serving
  // legitimately mutates, so bit-identity is asserted on text+got.
  auto text_bytes = [&] {
    const os::Process* p = px.vos.process(px.pid);
    const os::LoadedModule* app = p->module_named("toysrv");
    std::vector<uint8_t> out;
    for (auto kind : {melf::SectionKind::kText, melf::SectionKind::kPlt,
                      melf::SectionKind::kGot}) {
      const melf::Section* sec = px.bin->section(kind);
      if (sec == nullptr || sec->size == 0) continue;
      auto part = p->mem.peek_bytes(app->base + sec->offset, sec->size);
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  };
  const auto pristine = text_bytes();

  // Round 1: stub mechanism. Undo must be bit-identical so the flip to
  // trap starts from pristine bytes.
  dc.disable_feature(px.stub_request());
  EXPECT_EQ(px.request("B\n"), "");
  dc.restore_feature("B");
  EXPECT_EQ(text_bytes(), pristine);
  EXPECT_EQ(px.request("B\n"), "beta\n");

  // Round 2: trap mechanism on the same spec — the probe now costs a
  // SIGTRAP (kTerminate kills, proving the signal path is back).
  CutRequest trap_req = px.stub_request();
  trap_req.mechanism = CutMechanism::kTrap;
  dc.disable_feature(trap_req);
  const uint64_t traps_before = px.vos.total_sigtraps();
  px.conn.send("B\n");
  px.vos.run();
  EXPECT_EQ(px.vos.process(px.pid)->term_signal, os::sig::kSigTrap);
  EXPECT_GT(px.vos.total_sigtraps(), traps_before);
}

TEST(StubCut, DecodeCachesInvalidatedWhenStubLandsMidTrace) {
  // Warm the B path so its blocks sit in the decode cache / superblock
  // tier, then stub it: the very next probe must see the redirected call,
  // not a stale cached target.
  StubPipeline px;
  EXPECT_EQ(px.request("B\n"), "beta\n");
  EXPECT_EQ(px.request("B\n"), "beta\n");  // hot

  DynaCut dc(px.vos, px.pid);
  dc.disable_feature(px.stub_request());
  EXPECT_EQ(px.request("B\n"), "");  // stale trace would print "beta\n"
  EXPECT_EQ(px.vos.process(px.pid)->term_signal, 0);

  dc.restore_feature("B");
  EXPECT_EQ(px.request("B\n"), "beta\n");  // and back
}

TEST(StubCut, StubWithUnmapPolicyThrows) {
  StubPipeline px;
  DynaCut dc(px.vos, px.pid);
  CutRequest req = px.stub_request();
  req.removal = RemovalPolicy::kUnmapPages;
  EXPECT_THROW(dc.disable_feature(req), StateError);
}

// ---------------------------------------------------------------------------
// kAuto: address-taken entries keep the trap mechanism.
// ---------------------------------------------------------------------------

TEST(StubCut, AutoDemotesAddressTakenEntryToTrap) {
  namespace sys = os::sys;
  melf::ProgramBuilder b("autog");
  b.func("feat_taken").mov_ri(0, 1).ret();
  b.func("feat_plain").mov_ri(0, 2).ret();
  auto& m = b.func("main");
  m.label("spin");
  m.mark("site_taken").call("feat_taken");
  m.mark("site_plain").call("feat_plain");
  m.mov_sym(5, "feat_taken");  // the address escapes (kAbs64 reloc)
  m.mov_ri(1, 500).sys(sys::kNanosleep).jmp("spin");
  b.set_entry("main");
  auto bin = std::make_shared<melf::Binary>(b.link());

  os::Os vos;
  int pid = vos.spawn(bin);
  vos.run(3000);

  const melf::Symbol* taken = bin->find_symbol("feat_taken");
  const melf::Symbol* plain = bin->find_symbol("feat_plain");
  FeatureSpec spec;
  spec.name = "both";
  spec.blocks = {
      CovBlock{"autog", taken->value, static_cast<uint32_t>(taken->size)},
      CovBlock{"autog", plain->value, static_cast<uint32_t>(plain->size)}};

  const os::Process* p = vos.process(pid);
  const uint64_t site_taken =
      kAppBase + bin->find_symbol("site_taken")->value;
  const uint64_t site_plain =
      kAppBase + bin->find_symbol("site_plain")->value;
  const auto taken_before = p->mem.peek_bytes(site_taken, 5);

  DynaCut dc(vos, pid, {}, CheckMode::kOff);
  CustomizeReport rep = dc.disable_feature(
      {.feature = spec,
       .removal = RemovalPolicy::kBlockFirstByte,
       .trap = TrapPolicy::kTerminate,
       .mechanism = CutMechanism::kAuto});

  // Only the provably callsite-only entry was stubbed.
  EXPECT_EQ(rep.edits.callsites_stubbed, 1u);
  p = vos.process(pid);

  // The call at the address-taken entry's callsite is untouched (its entry
  // keeps the int3 mechanism); the plain one's rel32 now leaves the module.
  EXPECT_EQ(p->mem.peek_bytes(site_taken, 5), taken_before);
  auto rel = p->mem.peek_bytes(site_plain + 1, 4);
  int32_t disp = static_cast<int32_t>(
      static_cast<uint32_t>(rel[0]) | (static_cast<uint32_t>(rel[1]) << 8) |
      (static_cast<uint32_t>(rel[2]) << 16) |
      (static_cast<uint32_t>(rel[3]) << 24));
  uint64_t target = site_plain + 5 + static_cast<uint64_t>(disp);
  EXPECT_NE(target, kAppBase + plain->value);
  const os::LoadedModule* stub_lib = p->module_at(target);
  ASSERT_NE(stub_lib, nullptr);
  EXPECT_EQ(stub_lib->name, kStubLibName);

  // Both entries still carry the safety net.
  EXPECT_EQ(p->mem.peek_bytes(kAppBase + taken->value, 1)[0], 0xCC);
  EXPECT_EQ(p->mem.peek_bytes(kAppBase + plain->value, 1)[0], 0xCC);
}

// ---------------------------------------------------------------------------
// PLT/GOT half: cross-module imports of a stubbed export.
// ---------------------------------------------------------------------------

struct GotRig {
  os::Os vos;
  int pid = 0;
  std::shared_ptr<const melf::Binary> app;
  std::shared_ptr<const melf::Binary> lib;

  GotRig() {
    namespace sys = os::sys;
    melf::ProgramBuilder lb("featlib");
    lb.func("gadget").mov_ri(0, 9).ret();
    lib = std::make_shared<melf::Binary>(lb.link());

    melf::ProgramBuilder ab("plapp");
    ab.bss("res", 8);
    auto& m = ab.func("main");
    m.label("spin")
        .call_import("gadget")
        .mov_sym(1, "res")
        .store(1, 0, 0)
        .mov_ri(1, 200)
        .sys(sys::kNanosleep)
        .jmp("spin");
    ab.set_entry("main");
    app = std::make_shared<melf::Binary>(ab.link());

    pid = vos.spawn(app, {lib});
    vos.run(4000);
    // Park the process in its nanosleep before cutting: a raw instruction
    // budget can strand the ip at the gadget entry mid-call, where the
    // int3 safety net (correctly) fires on resume regardless of mechanism.
    while (vos.process(pid)->state != os::Process::State::kBlocked) {
      vos.run(1);
    }
  }

  uint64_t result() {
    const os::Process* p = vos.process(pid);
    uint64_t res_addr =
        kAppBase + app->find_symbol("res")->value;
    auto bytes = p->mem.peek_bytes(res_addr, 8);
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | bytes[i];
    return v;
  }
};

TEST(StubCut, GotSlotRedirectDeniesCrossModuleImport) {
  GotRig rig;
  EXPECT_EQ(rig.result(), 9u);  // enabled: the import returns 9

  const melf::Symbol* gadget = rig.lib->find_symbol("gadget");
  FeatureSpec spec;
  spec.name = "gadget";
  spec.blocks = {CovBlock{"featlib", gadget->value,
                          static_cast<uint32_t>(gadget->size)}};

  DynaCut dc(rig.vos, rig.pid, {}, CheckMode::kOff);
  CustomizeReport rep = dc.disable_feature(
      {.feature = spec,
       .removal = RemovalPolicy::kBlockFirstByte,
       .trap = TrapPolicy::kTerminate,
       .mechanism = CutMechanism::kStub,
       .stub_result = 403});
  EXPECT_EQ(rep.edits.got_slots_stubbed, 1u);

  const uint64_t traps_before = rig.vos.total_sigtraps();
  rig.vos.run(6000);
  // The import now lands in the deny stub: the caller sees 403, keeps
  // running, and no signal was delivered.
  EXPECT_EQ(rig.result(), 403u);
  EXPECT_EQ(rig.vos.process(rig.pid)->term_signal, 0);
  EXPECT_EQ(rig.vos.total_sigtraps(), traps_before);
  EXPECT_GE(dc.poll_stub_hits(), 1u);

  // Restore rewires the GOT slot to the original export.
  dc.restore_feature("gadget");
  rig.vos.run(6000);
  EXPECT_EQ(rig.result(), 9u);
}

// ---------------------------------------------------------------------------
// Fault matrix: every stub patch / inject / undo point must roll back
// bit-identically (the txn_test harness, narrowed to mechanism=kStub).
// ---------------------------------------------------------------------------

std::shared_ptr<const melf::Binary> stub_group_guest() {
  static std::shared_ptr<const melf::Binary> bin = [] {
    namespace sys = os::sys;
    melf::ProgramBuilder b("grp");
    b.func("feat").mov_ri(0, 7).ret();
    auto& m = b.func("main");
    m.sys(sys::kFork);
    m.label("spin")
        .call("feat")
        .mov_ri(1, 500)
        .sys(sys::kNanosleep)
        .jmp("spin");
    b.set_entry("main");
    return std::make_shared<melf::Binary>(b.link());
  }();
  return bin;
}

struct Snap {
  std::map<uint64_t, std::vector<uint8_t>> pages;
  std::vector<std::tuple<uint64_t, uint64_t, uint32_t, std::string>> vmas;
  std::vector<std::pair<std::string, uint64_t>> modules;

  static Snap of(const os::Process& p) {
    Snap s;
    for (uint64_t page : p.mem.populated_pages()) {
      auto bytes = p.mem.page_bytes(page);
      s.pages.emplace(page, std::vector<uint8_t>(bytes.begin(), bytes.end()));
    }
    for (const auto& [start, v] : p.mem.vmas()) {
      s.vmas.emplace_back(v.start, v.end, v.prot, v.name);
    }
    for (const auto& m : p.modules) s.modules.emplace_back(m.name, m.base);
    return s;
  }

  bool operator==(const Snap&) const = default;
};

CutRequest group_stub_request() {
  auto bin = stub_group_guest();
  const melf::Symbol* feat = bin->find_symbol("feat");
  FeatureSpec spec;
  spec.name = "feat";
  spec.blocks = {
      CovBlock{"grp", feat->value, static_cast<uint32_t>(feat->size)}};
  return CutRequest{.feature = spec,
                    .removal = RemovalPolicy::kBlockFirstByte,
                    .trap = TrapPolicy::kTerminate,
                    .mechanism = CutMechanism::kStub};
}

TEST(StubTxnMatrix, DisableAbortsRollBackBitIdentically) {
  const CutRequest req = group_stub_request();

  // Count the fault points of one clean stubbed disable.
  std::array<size_t, kNumFaultStages> totals{};
  {
    os::Os vos;
    int pid = vos.spawn(stub_group_guest());
    vos.run(3000);
    DynaCut dc(vos, pid, {}, CheckMode::kOff);
    FaultPlan counter;
    dc.set_fault_plan(&counter);
    CustomizeReport rep = dc.disable_feature(req);
    ASSERT_GE(rep.edits.callsites_stubbed, 1u);
    for (size_t s = 0; s < kNumFaultStages; ++s) {
      totals[s] = counter.count(static_cast<FaultStage>(s));
    }
  }
  // Stub cuts add rewrite points (the rel32 patches) and inject points
  // (the stub lib) on top of the base matrix.
  ASSERT_GE(totals[static_cast<size_t>(FaultStage::kRewrite)], 2u);
  ASSERT_GE(totals[static_cast<size_t>(FaultStage::kInject)], 1u);

  size_t faulted_runs = 0;
  for (size_t si = 0; si < kNumFaultStages; ++si) {
    const auto fstage = static_cast<FaultStage>(si);
    for (size_t i = 0; i < totals[si]; ++i, ++faulted_runs) {
      SCOPED_TRACE(std::string(fault_stage_name(fstage)) + " #" +
                   std::to_string(i));
      os::Os vos;
      int pid = vos.spawn(stub_group_guest());
      vos.run(3000);
      std::vector<int> group = vos.process_group(pid);
      ASSERT_EQ(group.size(), 2u);
      std::map<int, Snap> before;
      for (int p : group) before[p] = Snap::of(*vos.process(p));

      DynaCut dc(vos, pid, {}, CheckMode::kOff);
      FaultPlan plan = FaultPlan::fail_at(fstage, i);
      dc.set_fault_plan(&plan);
      EXPECT_THROW(dc.disable_feature(req), CustomizeError);

      EXPECT_FALSE(dc.feature_disabled("feat"));
      for (int p : group) {
        const os::Process* proc = vos.process(p);
        ASSERT_NE(proc, nullptr);
        EXPECT_NE(proc->state, os::Process::State::kFrozen);
        EXPECT_TRUE(Snap::of(*proc) == before[p])
            << "pid " << p << " not rolled back bit-identically";
      }
      vos.run(2000);  // the group still executes

      dc.set_fault_plan(nullptr);
      CustomizeReport rep = dc.disable_feature(req);
      EXPECT_EQ(rep.edits.processes, 2u);
      EXPECT_GE(rep.edits.callsites_stubbed, 2u);  // one per pid
    }
  }
  EXPECT_GT(faulted_runs, 0u);
}

TEST(StubTxnMatrix, RestoreAbortsKeepStubbedStateThenUndoBitIdentically) {
  const CutRequest req = group_stub_request();

  // Count the restore-side fault points once.
  std::array<size_t, kNumFaultStages> totals{};
  {
    os::Os vos;
    int pid = vos.spawn(stub_group_guest());
    vos.run(3000);
    DynaCut dc(vos, pid, {}, CheckMode::kOff);
    dc.disable_feature(req);
    FaultPlan counter;
    dc.set_fault_plan(&counter);
    dc.restore_feature("feat");
    for (size_t s = 0; s < kNumFaultStages; ++s) {
      totals[s] = counter.count(static_cast<FaultStage>(s));
    }
  }
  ASSERT_GE(totals[static_cast<size_t>(FaultStage::kRewrite)], 2u);

  for (size_t si = 0; si < kNumFaultStages; ++si) {
    const auto fstage = static_cast<FaultStage>(si);
    for (size_t i = 0; i < totals[si]; ++i) {
      SCOPED_TRACE(std::string(fault_stage_name(fstage)) + " #" +
                   std::to_string(i));
      os::Os vos;
      int pid = vos.spawn(stub_group_guest());
      vos.run(3000);
      std::vector<int> group = vos.process_group(pid);
      std::map<int, Snap> pristine;
      for (int p : group) pristine[p] = Snap::of(*vos.process(p));

      DynaCut dc(vos, pid, {}, CheckMode::kOff);
      dc.disable_feature(req);
      std::map<int, Snap> stubbed;
      for (int p : group) stubbed[p] = Snap::of(*vos.process(p));

      FaultPlan plan = FaultPlan::fail_at(fstage, i);
      dc.set_fault_plan(&plan);
      EXPECT_THROW(dc.restore_feature("feat"), CustomizeError);

      // Aborted restore: still disabled, still the stubbed bytes.
      EXPECT_TRUE(dc.feature_disabled("feat"));
      for (int p : group) {
        EXPECT_TRUE(Snap::of(*vos.process(p)) == stubbed[p])
            << "pid " << p << " not left in the stubbed state";
      }

      // Clean retry: every patched byte heals; only the injected lib's
      // pages (never patched, content untouched) distinguish the images,
      // so compare the app module's bytes against pristine.
      dc.set_fault_plan(nullptr);
      dc.restore_feature("feat");
      for (int p : group) {
        const os::Process* proc = vos.process(p);
        const os::LoadedModule* mod = proc->module_named("grp");
        auto now = proc->mem.peek_bytes(mod->base, mod->size);
        auto& pages = pristine[p].pages;
        std::vector<uint8_t> was;
        for (uint64_t off = 0; off < mod->size; off += kPageSize) {
          auto it = pages.find(mod->base + off);
          ASSERT_NE(it, pages.end());
          was.insert(was.end(), it->second.begin(), it->second.end());
        }
        was.resize(mod->size);
        EXPECT_TRUE(now == was)
            << "pid " << p << " module bytes not bit-identical after undo";
      }
      vos.run(2000);
    }
  }
}

}  // namespace
}  // namespace dynacut::core
