// Shared guest programs for integration tests.
#pragma once

#include <memory>

#include "apps/libc.hpp"
#include "melf/builder.hpp"
#include "os/syscall.hpp"

namespace dynacut::testing {

/// "toysrv": a line-protocol server on port 80 with the structure the paper
/// assumes — an init phase touching config memory, then an accept+dispatch
/// loop whose dispatcher is one big compare chain with a shared error path.
///
/// Protocol (one line per request):
///   "A..." -> "alpha\n"     (feature A: arm in dispatch + handle_a)
///   "B..." -> "beta\n"      (feature B: arm in dispatch + handle_b)
///   "Q..." -> server exits
///   else   -> "err\n"       (the error path, exported as symbol
///                            "dispatch_err" inside function "dispatch")
///
/// Exported symbols of interest: init, dispatch, handle_a, handle_b,
/// dispatch_err (mark), serve_loop.
inline std::shared_ptr<const melf::Binary> build_toysrv(uint16_t port = 80) {
  namespace sys = os::sys;
  melf::ProgramBuilder b("toysrv");
  b.rodata_str("ready_msg", "ready\n");
  b.rodata_str("alpha_msg", "alpha\n");
  b.rodata_str("beta_msg", "beta\n");
  b.rodata_str("err_msg", "err\n");
  b.rodata_str("cmd_a", "A");
  b.rodata_str("cmd_b", "B");
  b.rodata_str("cmd_q", "Q");
  b.bss("cfg", 8192);
  b.bss("buf", 128);

  // init: touch config memory (creates dumped pages) and announce readiness.
  auto& init = b.func("init");
  init.mov_sym(1, "cfg")
      .mov_ri(2, 7)
      .mov_ri(3, 8192)
      .call_import("memset")
      .mov_ri(1, 1)
      .mov_sym(2, "ready_msg")
      .call_import("write_str")
      .ret();

  auto& main = b.func("main");
  main.call("init");
  main.sys(sys::kSocket).mov_rr(12, 0);
  main.mov_rr(1, 12).mov_ri(2, port).sys(sys::kBind);
  main.mov_rr(1, 12).sys(sys::kListen);
  main.mov_rr(1, 12).sys(sys::kAccept).mov_rr(13, 0);
  main.call("serve_loop");
  main.mov_ri(1, 0).sys(sys::kExit);

  auto& loop = b.func("serve_loop");
  loop.label("top")
      .mov_rr(1, 13)
      .mov_sym(2, "buf")
      .mov_ri(3, 128)
      .call_import("recv_line")
      .cmp_ri(0, 0)
      .je("done")
      .call("dispatch")
      .cmp_ri(0, 99)  // dispatch returns 99 for Q
      .je("done")
      .jmp("top")
      .label("done")
      .ret();

  // The big switch-case dispatcher. Each feature arm is its own basic
  // block; the error path is in the same function (mark "dispatch_err").
  auto& d = b.func("dispatch");
  d.mov_sym(1, "buf").mov_sym(2, "cmd_a").mov_ri(3, 1).call_import("strncmp");
  d.cmp_ri(0, 0).je("arm_a");
  d.mov_sym(1, "buf").mov_sym(2, "cmd_b").mov_ri(3, 1).call_import("strncmp");
  d.cmp_ri(0, 0).je("arm_b");
  d.mov_sym(1, "buf").mov_sym(2, "cmd_q").mov_ri(3, 1).call_import("strncmp");
  d.cmp_ri(0, 0).je("arm_q");
  d.jmp("err");
  d.label("arm_a").call("handle_a").mov_ri(0, 0).ret();
  d.label("arm_b").call("handle_b").mov_ri(0, 0).ret();
  d.label("arm_q").mov_ri(0, 99).ret();
  d.label("err").mark("dispatch_err");
  d.mov_rr(1, 13).mov_sym(2, "err_msg").call_import("write_str");
  d.mov_ri(0, 0).ret();

  b.func("handle_a")
      .mov_rr(1, 13)
      .mov_sym(2, "alpha_msg")
      .call_import("write_str")
      .ret();
  b.func("handle_b")
      .mov_rr(1, 13)
      .mov_sym(2, "beta_msg")
      .call_import("write_str")
      .ret();

  b.set_entry("main");
  return std::make_shared<melf::Binary>(b.link());
}

}  // namespace dynacut::testing
