// Tests for the drcov-style tracer: dedup, module attribution, block sizes,
// first-execution order, nudge dump/reset, serialization.
#include <gtest/gtest.h>

#include <set>

#include "analysis/coverage.hpp"
#include "apps/libc.hpp"
#include "melf/builder.hpp"
#include "os/os.hpp"
#include "test_guests.hpp"
#include "trace/trace.hpp"

namespace dynacut::trace {
namespace {

namespace sys = os::sys;
using melf::Binary;
using melf::ProgramBuilder;

TEST(Tracer, RecordsBlocksOnce) {
  // A loop executes its body many times; the trace must contain it once.
  ProgramBuilder b("loopy");
  auto& f = b.func("main");
  f.mov_ri(6, 100)
      .label("loop")
      .sub_ri(6, 1)
      .cmp_ri(6, 0)
      .jne("loop")
      .mov_ri(1, 0)
      .sys(sys::kExit);
  b.set_entry("main");

  os::Os vos;
  Tracer tracer(vos);
  int pid = vos.spawn(std::make_shared<Binary>(b.link()));
  vos.run();
  TraceLog log = tracer.dump(pid);
  // Blocks: [start..jne], [loop body..jne] (re-entry), [mov;syscall] + the
  // loop body counted once despite 100 iterations.
  EXPECT_GE(log.blocks.size(), 2u);
  EXPECT_LE(log.blocks.size(), 4u);
  // No duplicate (module, offset) pairs.
  std::set<std::pair<uint32_t, uint64_t>> seen;
  for (const auto& blk : log.blocks) {
    EXPECT_TRUE(seen.insert({blk.module_id, blk.offset}).second);
  }
}

TEST(Tracer, AttributesBlocksToModules) {
  os::Os vos;
  Tracer tracer(vos);
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  vos.run();  // parks in accept
  auto conn = vos.connect(80);
  conn.send("A\nQ\n");
  vos.run();

  TraceLog log = tracer.dump(pid);
  ASSERT_GE(log.modules.size(), 2u);
  const ModuleRec* app = log.module_named("toysrv");
  const ModuleRec* libc = log.module_named("libc.so");
  ASSERT_NE(app, nullptr);
  ASSERT_NE(libc, nullptr);

  size_t app_blocks = 0, libc_blocks = 0;
  for (const auto& blk : log.blocks) {
    const auto& m = log.modules[blk.module_id];
    if (m.name == "toysrv") ++app_blocks;
    if (m.name == "libc.so") ++libc_blocks;
    // Offsets must be inside the module image.
    EXPECT_LT(blk.offset, m.size == 0 ? ~0ull : m.size);
    EXPECT_GT(blk.size, 0u);
  }
  EXPECT_GT(app_blocks, 5u);   // init, main, loop, dispatch, handler blocks
  EXPECT_GT(libc_blocks, 3u);  // memset, write_str, strncmp, recv_line
}

TEST(Tracer, BlockSizesMatchDisassembly) {
  ProgramBuilder b("sized");
  auto& f = b.func("main");
  f.mov_ri(1, 0).sys(sys::kExit);  // block: mov(10) + mov(10) + syscall(1)
  b.set_entry("main");
  os::Os vos;
  Tracer tracer(vos);
  int pid = vos.spawn(std::make_shared<Binary>(b.link()));
  vos.run();
  TraceLog log = tracer.dump(pid);
  ASSERT_EQ(log.blocks.size(), 1u);
  EXPECT_EQ(log.blocks[0].size, 21u);  // mov_ri r1 + mov_ri r0 + syscall
  EXPECT_EQ(log.blocks[0].offset, 0u);
}

TEST(Tracer, FirstExecutionOrderPreserved) {
  os::Os vos;
  Tracer tracer(vos);
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  vos.run();
  auto conn = vos.connect(80);
  conn.send("B\nQ\n");
  vos.run();
  TraceLog log = tracer.dump(pid);
  // init code must appear before any dispatch block.
  const Binary& bin = *vos.process(pid)->modules.back().binary;
  uint64_t init_off = bin.find_symbol("init")->value;
  uint64_t dispatch_off = bin.find_symbol("dispatch")->value;
  int init_pos = -1, dispatch_pos = -1;
  for (size_t i = 0; i < log.blocks.size(); ++i) {
    if (log.modules[log.blocks[i].module_id].name != "toysrv") continue;
    if (log.blocks[i].offset == init_off && init_pos < 0) {
      init_pos = static_cast<int>(i);
    }
    if (log.blocks[i].offset == dispatch_off && dispatch_pos < 0) {
      dispatch_pos = static_cast<int>(i);
    }
  }
  ASSERT_GE(init_pos, 0);
  ASSERT_GE(dispatch_pos, 0);
  EXPECT_LT(init_pos, dispatch_pos);
}

TEST(Tracer, NudgeDumpAndResetSplitsPhases) {
  os::Os vos;
  Tracer tracer(vos);
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  vos.run();  // init done, parked in accept — the "server ready" moment

  TraceLog init_log = tracer.dump_and_reset(pid);  // the nudge
  EXPECT_GT(init_log.blocks.size(), 0u);
  EXPECT_EQ(tracer.block_count(pid), 0u);

  auto conn = vos.connect(80);
  conn.send("A\nQ\n");
  vos.run();
  TraceLog serving_log = tracer.dump(pid);
  EXPECT_GT(serving_log.blocks.size(), 0u);

  // init must contain the init function; serving must not.
  const Binary& bin = *vos.process(pid)->modules.back().binary;
  uint64_t init_off = bin.find_symbol("init")->value;
  auto contains = [&](const TraceLog& log, uint64_t off) {
    for (const auto& blk : log.blocks) {
      if (log.modules[blk.module_id].name == "toysrv" && blk.offset == off) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(contains(init_log, init_off));
  EXPECT_FALSE(contains(serving_log, init_off));
  // dispatch runs only in the serving phase.
  uint64_t dispatch_off = bin.find_symbol("dispatch")->value;
  EXPECT_FALSE(contains(init_log, dispatch_off));
  EXPECT_TRUE(contains(serving_log, dispatch_off));
}

TEST(Tracer, TraceOnlyFiltersOtherPids) {
  ProgramBuilder b("twins");
  auto& f = b.func("main");
  f.sys(sys::kFork).mov_ri(1, 0).sys(sys::kExit);
  b.set_entry("main");
  os::Os vos;
  Tracer tracer(vos);
  int pid = vos.spawn(std::make_shared<Binary>(b.link()));
  tracer.trace_only(pid);
  vos.run();
  EXPECT_GT(tracer.block_count(pid), 0u);
  for (int other : vos.pids()) {
    if (other != pid) {
      EXPECT_EQ(tracer.block_count(other), 0u);
    }
  }
}

TEST(Tracer, ForkedChildTracedSeparately) {
  ProgramBuilder b("forktrace");
  auto& f = b.func("main");
  f.sys(sys::kFork);
  f.cmp_ri(0, 0).je("child");
  f.mov_ri(1, 0).sys(sys::kExit);
  f.label("child").nop().nop().mov_ri(1, 0).sys(sys::kExit);
  b.set_entry("main");
  os::Os vos;
  Tracer tracer(vos);
  int pid = vos.spawn(std::make_shared<Binary>(b.link()));
  vos.run();
  auto pids = vos.pids();
  ASSERT_EQ(pids.size(), 2u);
  int child = pids[0] == pid ? pids[1] : pids[0];
  EXPECT_GT(tracer.block_count(pid), 0u);
  EXPECT_GT(tracer.block_count(child), 0u);
  TraceLog child_log = tracer.dump(child);
  EXPECT_EQ(child_log.pid, child);
}

TEST(TraceLog, EncodeDecodeRoundtrip) {
  os::Os vos;
  Tracer tracer(vos);
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  vos.run();
  TraceLog log = tracer.dump(pid);
  TraceLog back = TraceLog::decode(log.encode());
  EXPECT_EQ(back.process_name, log.process_name);
  EXPECT_EQ(back.pid, log.pid);
  ASSERT_EQ(back.modules.size(), log.modules.size());
  for (size_t i = 0; i < log.modules.size(); ++i) {
    EXPECT_EQ(back.modules[i].name, log.modules[i].name);
    EXPECT_EQ(back.modules[i].base, log.modules[i].base);
  }
  ASSERT_EQ(back.blocks.size(), log.blocks.size());
  EXPECT_EQ(back.blocks, log.blocks);
}

TEST(TraceLog, DecodeRejectsGarbage) {
  std::vector<uint8_t> junk{9, 9, 9};
  EXPECT_THROW(TraceLog::decode(junk), DecodeError);
}

TEST(TraceLog, DecodeRejectsDanglingModuleRef) {
  TraceLog log;
  log.process_name = "x";
  log.modules.push_back(ModuleRec{"m", 0, 100});
  log.blocks.push_back(BlockRec{5, 0, 1});  // module 5 doesn't exist
  auto bytes = log.encode();
  EXPECT_THROW(TraceLog::decode(bytes), DecodeError);
}

TEST(TraceLog, UnknownModuleBlocksRoundtrip) {
  // Blocks attributed to the synthetic "[unknown]" module (base 0, size 0)
  // must survive encode/decode like any real module's.
  TraceLog log;
  log.process_name = "synthetic";
  log.pid = 7;
  log.modules.push_back(ModuleRec{"app", 0x10000, 0x4000});
  log.modules.push_back(ModuleRec{"[unknown]", 0, 0});
  log.blocks.push_back(BlockRec{0, 0x120, 9});
  log.blocks.push_back(BlockRec{1, 0x7f1d00000040, 5});  // absolute addr
  log.blocks.push_back(BlockRec{0, 0x200, 3});

  TraceLog back = TraceLog::decode(log.encode());
  ASSERT_EQ(back.modules.size(), 2u);
  EXPECT_EQ(back.modules[1].name, "[unknown]");
  EXPECT_EQ(back.modules[1].base, 0u);
  EXPECT_EQ(back.modules[1].size, 0u);
  EXPECT_EQ(back.blocks, log.blocks);
  ASSERT_NE(back.module_named("[unknown]"), nullptr);
}

TEST(TraceLog, DecodeRejectsTruncatedInput) {
  TraceLog log;
  log.process_name = "t";
  log.modules.push_back(ModuleRec{"m", 0x1000, 0x1000});
  log.blocks.push_back(BlockRec{0, 0x10, 4});
  std::vector<uint8_t> bytes = log.encode();
  // Every proper prefix must be rejected, never mis-decoded or crash.
  for (size_t n = 0; n < bytes.size(); ++n) {
    std::span<const uint8_t> prefix(bytes.data(), n);
    EXPECT_THROW(TraceLog::decode(prefix), DecodeError) << "prefix " << n;
  }
}

TEST(Tracer, DumpUnknownPidThrows) {
  os::Os vos;
  Tracer tracer(vos);
  EXPECT_THROW(tracer.dump(12345), StateError);
}

}  // namespace
}  // namespace dynacut::trace
