// Transactional customization: group-atomicity under deterministic fault
// injection. For every fault point a customization passes through
// (checkpoint / rewrite / inject / restore, per pid) and every
// RemovalPolicy × TrapPolicy combination, an aborted disable_feature must
// leave every process of the group bit-identical to its pre-call state
// (.text bytes, VMA list, sigaction table), feature_disabled() must stay
// false, and a retry without the fault must succeed.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "analysis/coverage.hpp"
#include "apps/libc.hpp"
#include "core/dynacut.hpp"
#include "core/handler_lib.hpp"
#include "core/txn.hpp"
#include "melf/builder.hpp"
#include "os/os.hpp"
#include "test_guests.hpp"
#include "trace/trace.hpp"

namespace dynacut::core {
namespace {

using analysis::CovBlock;
using analysis::CoverageGraph;

// ---------------------------------------------------------------------------
// Rig: an nginx-style master+worker pair with a removable function.
// ---------------------------------------------------------------------------

/// "grp": main forks a worker, both spin in nanosleep. Function "feat"
/// spans >2 pages of nops (so kUnmapPages drops whole pages) and carries an
/// error mark "feat_err" in the same function but outside the removed range
/// (so kRedirect passes the same-function restriction).
std::shared_ptr<const melf::Binary> group_guest() {
  static std::shared_ptr<const melf::Binary> bin = [] {
    namespace sys = os::sys;
    melf::ProgramBuilder b("grp");
    auto& f = b.func("feat");
    for (size_t i = 0; i < 2 * kPageSize + 128; ++i) f.nop();
    f.mov_ri(0, 7).ret();
    f.label("err").mark("feat_err").mov_ri(0, 1).ret();
    auto& m = b.func("main");
    m.sys(sys::kFork);
    m.label("spin").mov_ri(1, 500).sys(sys::kNanosleep).jmp("spin");
    b.set_entry("main");
    return std::make_shared<melf::Binary>(b.link());
  }();
  return bin;
}

struct GroupRig {
  os::Os vos;
  int pid = 0;

  GroupRig() {
    pid = vos.spawn(group_guest());
    vos.run(3000);
  }
  std::vector<int> group() { return vos.process_group(pid); }
};

/// Feature spec covering two full pages of "feat", redirectable to
/// "feat_err" (same function, outside the removed range).
FeatureSpec matrix_spec() {
  auto bin = group_guest();
  FeatureSpec s;
  s.name = "feat";
  s.blocks = {CovBlock{"grp", bin->find_symbol("feat")->value,
                       static_cast<uint32_t>(2 * kPageSize)}};
  s.redirect_module = "grp";
  s.redirect_offset = bin->find_symbol("feat_err")->value;
  return s;
}

// ---------------------------------------------------------------------------
// Bit-exact process snapshots (the rollback invariant).
// ---------------------------------------------------------------------------

struct Snap {
  std::map<uint64_t, std::vector<uint8_t>> pages;
  std::vector<std::tuple<uint64_t, uint64_t, uint32_t, std::string>> vmas;
  std::vector<std::pair<uint64_t, uint64_t>> sigactions;
  std::vector<std::pair<std::string, uint64_t>> modules;
  uint64_t ip = 0;

  static Snap of(const os::Process& p) {
    Snap s;
    for (uint64_t page : p.mem.populated_pages()) {
      auto bytes = p.mem.page_bytes(page);
      s.pages.emplace(page, std::vector<uint8_t>(bytes.begin(), bytes.end()));
    }
    for (const auto& [start, v] : p.mem.vmas()) {
      s.vmas.emplace_back(v.start, v.end, v.prot, v.name);
    }
    for (const auto& sa : p.sigactions) {
      s.sigactions.emplace_back(sa.handler, sa.restorer);
    }
    for (const auto& m : p.modules) s.modules.emplace_back(m.name, m.base);
    s.ip = p.cpu.ip;
    return s;
  }

  bool operator==(const Snap&) const = default;
};

std::map<int, Snap> snapshot_group(os::Os& vos, const std::vector<int>& pids) {
  std::map<int, Snap> out;
  for (int p : pids) out[p] = Snap::of(*vos.process(p));
  return out;
}

// ---------------------------------------------------------------------------
// The fault matrix.
// ---------------------------------------------------------------------------

/// Counts the fault points one clean disable_feature passes through.
std::array<size_t, kNumFaultStages> count_fault_points(const FeatureSpec& spec,
                                                       RemovalPolicy removal,
                                                       TrapPolicy trap) {
  GroupRig rig;
  DynaCut dc(rig.vos, rig.pid, {}, CheckMode::kOff);
  FaultPlan counter;
  dc.set_fault_plan(&counter);
  dc.disable_feature({spec, removal, trap});
  std::array<size_t, kNumFaultStages> totals{};
  for (size_t s = 0; s < kNumFaultStages; ++s) {
    totals[s] = counter.count(static_cast<FaultStage>(s));
  }
  return totals;
}

/// For every fault point of the (removal, trap) scenario: inject the fault,
/// require a rolled-back CustomizeError with bit-identical processes, then
/// retry without the fault and require success.
void run_abort_matrix(RemovalPolicy removal, TrapPolicy trap) {
  const FeatureSpec spec = matrix_spec();
  const auto totals = count_fault_points(spec, removal, trap);
  ASSERT_GE(totals[static_cast<size_t>(FaultStage::kCheckpoint)], 2u);
  ASSERT_GE(totals[static_cast<size_t>(FaultStage::kRestore)], 2u);

  size_t faulted_runs = 0;
  for (size_t si = 0; si < kNumFaultStages; ++si) {
    const auto fstage = static_cast<FaultStage>(si);
    for (size_t i = 0; i < totals[si]; ++i, ++faulted_runs) {
      SCOPED_TRACE(std::string(fault_stage_name(fstage)) + " #" +
                   std::to_string(i));
      GroupRig rig;
      std::vector<int> group = rig.group();
      ASSERT_EQ(group.size(), 2u);
      auto before = snapshot_group(rig.vos, group);

      DynaCut dc(rig.vos, rig.pid, {}, CheckMode::kOff);
      FaultPlan plan = FaultPlan::fail_at(fstage, i);
      dc.set_fault_plan(&plan);
      bool threw = false;
      try {
        dc.disable_feature({spec, removal, trap});
      } catch (const CustomizeError& e) {
        threw = true;
        EXPECT_EQ(e.feature(), spec.name);
        EXPECT_EQ(e.stage(), fstage);
        EXPECT_NE(std::find(group.begin(), group.end(), e.pid()),
                  group.end())
            << "error names pid " << e.pid() << " outside the group";
      }
      ASSERT_TRUE(threw) << "fault did not surface as CustomizeError";

      // Rolled back: nothing recorded, nobody frozen, every process
      // bit-identical to its pre-call state.
      EXPECT_FALSE(dc.feature_disabled(spec.name));
      for (int p : group) {
        const os::Process* proc = rig.vos.process(p);
        ASSERT_NE(proc, nullptr);
        EXPECT_NE(proc->state, os::Process::State::kFrozen)
            << "pid " << p << " left frozen";
        EXPECT_TRUE(Snap::of(*proc) == before[p])
            << "pid " << p << " not rolled back bit-identically";
      }
      rig.vos.run(2000);  // the group still executes

      // Retry without the fault succeeds end to end.
      dc.set_fault_plan(nullptr);
      CustomizeReport rep = dc.disable_feature({spec, removal, trap});
      EXPECT_EQ(rep.edits.processes, 2u);
      EXPECT_TRUE(dc.feature_disabled(spec.name));
    }
  }
  EXPECT_GT(faulted_runs, 0u);
}

TEST(TxnMatrix, FirstByteTerminate) {
  run_abort_matrix(RemovalPolicy::kBlockFirstByte, TrapPolicy::kTerminate);
}
TEST(TxnMatrix, FirstByteRedirect) {
  run_abort_matrix(RemovalPolicy::kBlockFirstByte, TrapPolicy::kRedirect);
}
TEST(TxnMatrix, FirstByteVerify) {
  run_abort_matrix(RemovalPolicy::kBlockFirstByte, TrapPolicy::kVerify);
}
TEST(TxnMatrix, WipeTerminate) {
  run_abort_matrix(RemovalPolicy::kWipeBlocks, TrapPolicy::kTerminate);
}
TEST(TxnMatrix, WipeRedirect) {
  run_abort_matrix(RemovalPolicy::kWipeBlocks, TrapPolicy::kRedirect);
}
TEST(TxnMatrix, UnmapTerminate) {
  run_abort_matrix(RemovalPolicy::kUnmapPages, TrapPolicy::kTerminate);
}
TEST(TxnMatrix, UnmapRedirect) {
  run_abort_matrix(RemovalPolicy::kUnmapPages, TrapPolicy::kRedirect);
}

// ---------------------------------------------------------------------------
// Restore-phase rollback (the re-staging path) and restore_feature faults.
// ---------------------------------------------------------------------------

TEST(Txn, RestorePhaseFailureRestagesAlreadyPatchedProcesses) {
  // Fail the *second* restore of the commit phase: the first process is
  // already running patched code and must be re-frozen and re-staged from
  // its saved pristine image.
  GroupRig rig;
  std::vector<int> group = rig.group();
  ASSERT_EQ(group.size(), 2u);
  auto before = snapshot_group(rig.vos, group);

  DynaCut dc(rig.vos, rig.pid, {}, CheckMode::kOff);
  FaultPlan plan = FaultPlan::fail_at(FaultStage::kRestore, 1);
  dc.set_fault_plan(&plan);
  FeatureSpec spec = matrix_spec();
  bool threw = false;
  try {
    dc.disable_feature({spec, RemovalPolicy::kBlockFirstByte,
                       TrapPolicy::kTerminate});
  } catch (const CustomizeError& e) {
    threw = true;
    EXPECT_EQ(e.stage(), FaultStage::kRestore);
    EXPECT_EQ(e.pid(), group[1]);
  }
  ASSERT_TRUE(threw);

  // The pristine images went through the tmpfs store during staging.
  for (int p : group) {
    EXPECT_TRUE(
        dc.store().contains(image::ImageKey{p, image::ImageKey::kPreTag}));
  }
  for (int p : group) {
    EXPECT_TRUE(Snap::of(*rig.vos.process(p)) == before[p]) << "pid " << p;
  }
  EXPECT_FALSE(dc.feature_disabled("feat"));
}

TEST(Txn, AbortedRestoreFeatureKeepsFeatureDisabled) {
  const FeatureSpec spec = matrix_spec();

  // Count restore_feature's fault points on a clean rig.
  std::array<size_t, kNumFaultStages> totals{};
  {
    GroupRig rig;
    DynaCut dc(rig.vos, rig.pid, {}, CheckMode::kOff);
    dc.disable_feature({spec, RemovalPolicy::kBlockFirstByte,
                       TrapPolicy::kTerminate});
    FaultPlan counter;
    dc.set_fault_plan(&counter);
    dc.restore_feature("feat");
    for (size_t s = 0; s < kNumFaultStages; ++s) {
      totals[s] = counter.count(static_cast<FaultStage>(s));
    }
  }

  uint64_t feat_addr = kAppBase + group_guest()->find_symbol("feat")->value;
  for (size_t si = 0; si < kNumFaultStages; ++si) {
    const auto fstage = static_cast<FaultStage>(si);
    for (size_t i = 0; i < totals[si]; ++i) {
      SCOPED_TRACE(std::string(fault_stage_name(fstage)) + " #" +
                   std::to_string(i));
      GroupRig rig;
      DynaCut dc(rig.vos, rig.pid, {}, CheckMode::kOff);
      dc.disable_feature({spec, RemovalPolicy::kBlockFirstByte,
                         TrapPolicy::kTerminate});
      std::vector<int> group = rig.group();
      auto patched = snapshot_group(rig.vos, group);

      FaultPlan plan = FaultPlan::fail_at(fstage, i);
      dc.set_fault_plan(&plan);
      EXPECT_THROW(dc.restore_feature("feat"), CustomizeError);

      // Aborted restore: the feature stays fully disabled, processes keep
      // their patched-but-consistent state.
      EXPECT_TRUE(dc.feature_disabled("feat"));
      for (int p : group) {
        EXPECT_TRUE(Snap::of(*rig.vos.process(p)) == patched[p])
            << "pid " << p;
      }

      // Clean retry fully re-enables.
      dc.set_fault_plan(nullptr);
      dc.restore_feature("feat");
      EXPECT_FALSE(dc.feature_disabled("feat"));
      for (int p : group) {
        EXPECT_EQ(rig.vos.process(p)->mem.peek_bytes(feat_addr, 1)[0], 0x90)
            << "pid " << p;
      }
    }
  }
}

TEST(Txn, FreezeGroupIsAllOrNothing) {
  GroupRig rig;
  std::vector<int> pids = rig.group();
  pids.push_back(4242);  // no such process
  EXPECT_THROW(rig.vos.freeze_group(pids), StateError);
  for (int p : rig.group()) {
    EXPECT_NE(rig.vos.process(p)->state, os::Process::State::kFrozen);
  }
}

// ---------------------------------------------------------------------------
// Aborted customization on a live server: connection survival + retry.
// ---------------------------------------------------------------------------

struct ServerRig {
  os::Os vos;
  int pid = 0;
  std::shared_ptr<const melf::Binary> bin;
  FeatureSpec feature_b;
  os::HostConn conn;

  ServerRig() {
    bin = testing::build_toysrv();
    auto trace_requests = [&](const std::string& reqs) {
      os::Os prof;
      trace::Tracer tracer(prof);
      int p = prof.spawn(testing::build_toysrv(), {apps::build_libc()});
      prof.run();
      auto c = prof.connect(80);
      c.send(reqs);
      prof.run();
      return tracer.dump(p);
    };
    trace::TraceLog undesired = trace_requests("A\nB\nQ\n");
    trace::TraceLog wanted = trace_requests("A\nA\nQ\n");
    feature_b.name = "B";
    feature_b.blocks =
        analysis::feature_diff({undesired}, {wanted}, "toysrv").blocks();
    feature_b.redirect_module = "toysrv";
    feature_b.redirect_offset = bin->find_symbol("dispatch_err")->value;

    pid = vos.spawn(bin, {apps::build_libc()});
    vos.run();
    conn = vos.connect(80);
  }

  std::string request(const std::string& line) {
    conn.send(line);
    vos.run();
    return conn.recv_all();
  }
};

TEST(Txn, AbortedDisableKeepsServiceAndConnection) {
  ServerRig srv;
  EXPECT_EQ(srv.request("B\n"), "beta\n");

  DynaCut dc(srv.vos, srv.pid);
  FaultPlan plan = FaultPlan::fail_at(FaultStage::kInject, 0);
  dc.set_fault_plan(&plan);
  EXPECT_THROW(dc.disable_feature({srv.feature_b,
                                  RemovalPolicy::kBlockFirstByte,
                                  TrapPolicy::kRedirect}),
               CustomizeError);

  // Rolled back: the feature still answers, over the same connection
  // (TCP_REPAIR-style survival), and nothing was recorded.
  EXPECT_FALSE(dc.feature_disabled("B"));
  EXPECT_EQ(srv.request("B\n"), "beta\n");

  // The exact same customization succeeds once the fault is gone.
  dc.set_fault_plan(nullptr);
  dc.disable_feature({srv.feature_b, RemovalPolicy::kBlockFirstByte,
                     TrapPolicy::kRedirect});
  EXPECT_EQ(srv.request("B\n"), "err\n");
  EXPECT_EQ(srv.request("A\n"), "alpha\n");
}

TEST(Txn, CustomizeErrorIsAStateError) {
  // Callers written against the pre-transactional API catch StateError.
  GroupRig rig;
  DynaCut dc(rig.vos, rig.pid, {}, CheckMode::kOff);
  FaultPlan plan = FaultPlan::fail_at(FaultStage::kCheckpoint, 0);
  dc.set_fault_plan(&plan);
  EXPECT_THROW(dc.disable_feature({matrix_spec(),
                                  RemovalPolicy::kBlockFirstByte,
                                  TrapPolicy::kTerminate}),
               StateError);
}

// ---------------------------------------------------------------------------
// Satellite regressions.
// ---------------------------------------------------------------------------

TEST(Txn, RestoreFeatureChargesPerPidDeltas) {
  // Two processes, one patched block each: restore must charge exactly
  // 2 × patch_cost(1 block); the old cumulative accounting charged the
  // second process for the first one's undo as well (3 blocks total).
  GroupRig rig;
  auto bin = group_guest();
  FeatureSpec spec;
  spec.name = "one";
  spec.blocks = {CovBlock{"grp", bin->find_symbol("feat")->value, 1}};
  DynaCut dc(rig.vos, rig.pid, {}, CheckMode::kOff);
  dc.disable_feature({spec, RemovalPolicy::kBlockFirstByte,
                     TrapPolicy::kTerminate});

  CustomizeReport rep = dc.restore_feature("one");
  EXPECT_EQ(rep.edits.processes, 2u);
  EXPECT_EQ(rep.edits.blocks_patched, 2u);
  CostModel model;
  EXPECT_EQ(rep.timing.code_update_ns, 2 * model.patch_cost(1, 0));
}

TEST(Txn, SecondVerifyFeatureMergesIntoExistingVerifier) {
  ServerRig srv;
  const melf::Symbol* ha = srv.bin->find_symbol("handle_a");
  const melf::Symbol* hb = srv.bin->find_symbol("handle_b");
  FeatureSpec fa{"A_over", {CovBlock{"toysrv", ha->value, 1}}, "", 0};
  FeatureSpec fb{"B_over", {CovBlock{"toysrv", hb->value, 1}}, "", 0};

  DynaCut dc(srv.vos, srv.pid);
  dc.disable_feature({fa, RemovalPolicy::kBlockFirstByte, TrapPolicy::kVerify});
  dc.disable_feature({fb, RemovalPolicy::kBlockFirstByte, TrapPolicy::kVerify});

  // One verifier library, not two: the second feature merged its originals.
  const os::Process* p = srv.vos.process(srv.pid);
  size_t verifier_modules = 0;
  for (const auto& m : p->modules) {
    if (m.name == kVerifyLibName) ++verifier_modules;
  }
  EXPECT_EQ(verifier_modules, 1u);

  // Both over-removed features heal on first touch.
  EXPECT_EQ(srv.request("A\n"), "alpha\n");
  EXPECT_EQ(srv.request("B\n"), "beta\n");
  EXPECT_EQ(dc.verifier_log(srv.pid).size(), 2u);
}

TEST(Txn, DoubleInitTrimRemainsFullyRestorable) {
  GroupRig rig;
  auto bin = group_guest();
  uint64_t off = bin->find_symbol("feat")->value;
  uint64_t addr = kAppBase + off;

  CoverageGraph round1;
  round1.insert(CovBlock{"grp", off, 1});
  CoverageGraph round2;  // overlaps round 1 and adds a new block
  round2.insert(CovBlock{"grp", off, 1});
  round2.insert(CovBlock{"grp", off + 1, 1});

  DynaCut dc(rig.vos, rig.pid, {}, CheckMode::kOff);
  dc.remove_init_code(round1, RemovalPolicy::kBlockFirstByte);
  dc.remove_init_code(round2, RemovalPolicy::kBlockFirstByte);
  EXPECT_TRUE(dc.feature_disabled("__init__"));
  for (int p : rig.group()) {
    auto bytes = rig.vos.process(p)->mem.peek_bytes(addr, 2);
    EXPECT_EQ(bytes[0], 0xCC);
    EXPECT_EQ(bytes[1], 0xCC);
  }

  // A single restore undoes *both* rounds (the second trim merged its edit
  // records instead of overwriting the first round's stashed bytes).
  dc.restore_feature("__init__");
  EXPECT_FALSE(dc.feature_disabled("__init__"));
  for (int p : rig.group()) {
    auto bytes = rig.vos.process(p)->mem.peek_bytes(addr, 2);
    EXPECT_EQ(bytes[0], 0x90) << "pid " << p;
    EXPECT_EQ(bytes[1], 0x90) << "pid " << p;
  }
}

TEST(Txn, FaultPlanCountsAndFiresDeterministically) {
  FaultPlan counter;
  counter.fire(FaultStage::kCheckpoint);
  counter.fire(FaultStage::kCheckpoint);
  counter.fire(FaultStage::kRewrite);
  EXPECT_EQ(counter.count(FaultStage::kCheckpoint), 2u);
  EXPECT_EQ(counter.count(FaultStage::kRewrite), 1u);
  EXPECT_EQ(counter.count(FaultStage::kRestore), 0u);

  FaultPlan armed = FaultPlan::fail_at(FaultStage::kRewrite, 1);
  EXPECT_NO_THROW(armed.fire(FaultStage::kRewrite));     // #0
  EXPECT_NO_THROW(armed.fire(FaultStage::kCheckpoint));  // other stage
  EXPECT_THROW(armed.fire(FaultStage::kRewrite), InjectedFault);  // #1
  EXPECT_NO_THROW(armed.fire(FaultStage::kRewrite));     // #2: past it
}

}  // namespace
}  // namespace dynacut::core
