// Tests for the VM substrate: address-space semantics (VMAs, pages,
// protections, faults) and the VX64 executor.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/constants.hpp"
#include "isa/encode.hpp"
#include "vm/addrspace.hpp"
#include "vm/cpu.hpp"
#include "vm/exec.hpp"
#include "vm/superblock.hpp"

namespace dynacut::vm {
namespace {

using isa::Encoder;
using isa::Op;

// ---------------------------------------------------------------------------
// AddressSpace
// ---------------------------------------------------------------------------

TEST(AddressSpace, MapAndQuery) {
  AddressSpace as;
  as.map(0x1000, 0x2000, kProtRead | kProtWrite, "test");
  const Vma* v = as.vma_at(0x1500);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->start, 0x1000u);
  EXPECT_EQ(v->end, 0x3000u);
  EXPECT_EQ(v->name, "test");
  EXPECT_EQ(as.vma_at(0x0fff), nullptr);
  EXPECT_EQ(as.vma_at(0x3000), nullptr);
}

TEST(AddressSpace, MapRoundsSizeToPage) {
  AddressSpace as;
  as.map(0x1000, 1, kProtRead, "tiny");
  EXPECT_NE(as.vma_at(0x1fff), nullptr);
}

TEST(AddressSpace, OverlappingMapThrows) {
  AddressSpace as;
  as.map(0x1000, 0x2000, kProtRead, "a");
  EXPECT_THROW(as.map(0x2000, 0x1000, kProtRead, "b"), StateError);
  EXPECT_THROW(as.map(0x0000, 0x2000, kProtRead, "c"), StateError);
  as.map(0x3000, 0x1000, kProtRead, "ok");  // adjacent is fine
}

TEST(AddressSpace, MapEmptyThrows) {
  AddressSpace as;
  EXPECT_THROW(as.map(0x1000, 0, kProtRead, "none"), StateError);
}

TEST(AddressSpace, ReadOfUnwrittenPagesIsZero) {
  AddressSpace as;
  as.map(0x1000, 0x1000, kProtRead | kProtWrite, "z");
  uint64_t v = 123;
  ASSERT_TRUE(as.read(0x1100, &v, 8, kProtRead).ok);
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(as.populated_pages().empty());  // reads don't populate
}

TEST(AddressSpace, WriteReadRoundtripAcrossPages) {
  AddressSpace as;
  as.map(0x1000, 0x3000, kProtRead | kProtWrite, "rw");
  std::vector<uint8_t> data(5000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = uint8_t(i * 7);
  ASSERT_TRUE(as.write(0x1ffc, data.data(), data.size(), kProtWrite).ok);
  std::vector<uint8_t> back(5000);
  ASSERT_TRUE(as.read(0x1ffc, back.data(), back.size(), kProtRead).ok);
  EXPECT_EQ(back, data);
  EXPECT_EQ(as.populated_pages().size(), 3u);  // touched 3 pages
}

TEST(AddressSpace, ProtectionViolationFaults) {
  AddressSpace as;
  as.map(0x1000, 0x1000, kProtRead, "ro");
  uint8_t b = 1;
  Access a = as.write(0x1000, &b, 1, kProtWrite);
  EXPECT_FALSE(a.ok);
  EXPECT_EQ(a.fault_addr, 0x1000u);
  // Host pokes bypass protection.
  as.poke(0x1000, &b, 1);
  uint8_t out = 0;
  as.peek(0x1000, &out, 1);
  EXPECT_EQ(out, 1);
}

TEST(AddressSpace, UnmappedAccessFaultsAtExactAddress) {
  AddressSpace as;
  as.map(0x1000, 0x1000, kProtRead | kProtWrite, "a");
  std::vector<uint8_t> buf(0x2000);
  Access a = as.read(0x1800, buf.data(), 0x1000, kProtRead);
  EXPECT_FALSE(a.ok);
  EXPECT_EQ(a.fault_addr, 0x2000u);  // first byte outside the VMA
}

TEST(AddressSpace, UnmapWholeRegionDiscardsPages) {
  AddressSpace as;
  as.map(0x1000, 0x2000, kProtRead | kProtWrite, "gone");
  uint64_t v = 42;
  as.write(0x1000, &v, 8, kProtWrite);
  as.unmap(0x1000, 0x2000);
  EXPECT_EQ(as.vma_at(0x1000), nullptr);
  EXPECT_TRUE(as.populated_pages().empty());
  // Remapping the range sees zeros, not stale data.
  as.map(0x1000, 0x1000, kProtRead | kProtWrite, "fresh");
  uint64_t out = 99;
  as.read(0x1000, &out, 8, kProtRead);
  EXPECT_EQ(out, 0u);
}

TEST(AddressSpace, PartialUnmapSplitsVma) {
  AddressSpace as;
  as.map(0x1000, 0x3000, kProtRead, "big");
  as.unmap(0x2000, 0x1000);
  EXPECT_NE(as.vma_at(0x1000), nullptr);
  EXPECT_EQ(as.vma_at(0x2000), nullptr);
  EXPECT_NE(as.vma_at(0x3000), nullptr);
  EXPECT_EQ(as.vma_count(), 2u);
}

TEST(AddressSpace, UnmapUnmappedThrows) {
  AddressSpace as;
  EXPECT_THROW(as.unmap(0x5000, 0x1000), StateError);
}

TEST(AddressSpace, ProtectSplitsAndApplies) {
  AddressSpace as;
  as.map(0x1000, 0x3000, kProtRead | kProtWrite, "rw");
  as.protect(0x2000, 0x1000, kProtRead);
  uint8_t b = 1;
  EXPECT_TRUE(as.write(0x1000, &b, 1, kProtWrite).ok);
  EXPECT_FALSE(as.write(0x2000, &b, 1, kProtWrite).ok);
  EXPECT_TRUE(as.write(0x3000, &b, 1, kProtWrite).ok);
}

TEST(AddressSpace, FindFreeSkipsMappedRegions) {
  AddressSpace as;
  as.map(0x1000, 0x1000, kProtRead, "a");
  as.map(0x3000, 0x1000, kProtRead, "b");
  EXPECT_EQ(as.find_free(0x1000, 0x1000), 0x2000u);
  EXPECT_EQ(as.find_free(0x2000, 0x1000), 0x4000u);  // 0x2000 gap too small
  EXPECT_EQ(as.find_free(0x1000, 0x5000), 0x5000u);
}

TEST(AddressSpace, InstallAndReadPage) {
  AddressSpace as;
  as.map(0x1000, 0x1000, kProtRead, "p");
  std::vector<uint8_t> page(kPageSize, 0x5a);
  as.install_page(0x1000, page);
  auto bytes = as.page_bytes(0x1000);
  EXPECT_EQ(bytes[0], 0x5a);
  EXPECT_EQ(bytes[kPageSize - 1], 0x5a);
  EXPECT_THROW(as.page_bytes(0x2000), StateError);
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

struct Machine {
  AddressSpace mem;
  Cpu cpu;

  explicit Machine(const std::vector<uint8_t>& code) {
    mem.map(0x1000, page_ceil(code.size()), kProtRead | kProtExec, "code");
    mem.poke(0x1000, code.data(), code.size());
    mem.map(0x8000, 0x1000, kProtRead | kProtWrite, "stack");
    cpu.ip = 0x1000;
    cpu.sp() = 0x9000;
  }

  /// Steps until a non-kOk result or `limit` instructions.
  StepResult run(int limit = 10000) {
    StepResult r;
    for (int i = 0; i < limit; ++i) {
      r = step(mem, cpu);
      if (r.kind != StepKind::kOk) return r;
    }
    return r;
  }
};

std::vector<uint8_t> assemble(const std::function<void(Encoder&)>& gen) {
  std::vector<uint8_t> code;
  Encoder enc(code);
  gen(enc);
  return code;
}

TEST(Exec, ArithmeticAndSyscall) {
  auto code = assemble([](Encoder& e) {
    e.mov_ri(1, 20);
    e.mov_ri(2, 22);
    e.add_rr(1, 2);   // r1 = 42
    e.mov_ri(3, 7);
    e.mul_rr(3, 1);   // r3 = 294
    e.sub_ri(3, 94);  // r3 = 200
    e.mov_ri(4, 8);
    e.div_rr(3, 4);   // r3 = 25
    e.syscall();
  });
  Machine m(code);
  StepResult r = m.run();
  EXPECT_EQ(r.kind, StepKind::kSyscall);
  EXPECT_EQ(m.cpu.regs[1], 42u);
  EXPECT_EQ(m.cpu.regs[3], 25u);
}

TEST(Exec, BitwiseAndShifts) {
  auto code = assemble([](Encoder& e) {
    e.mov_ri(1, 0xf0);
    e.mov_ri(2, 0x0f);
    e.or_rr(1, 2);    // 0xff
    e.mov_ri(3, 0xff);
    e.and_rr(3, 1);   // 0xff
    e.xor_rr(3, 2);   // 0xf0
    e.shl_ri(3, 4);   // 0xf00
    e.shr_ri(3, 8);   // 0xf
    e.syscall();
  });
  Machine m(code);
  m.run();
  EXPECT_EQ(m.cpu.regs[3], 0xfu);
}

TEST(Exec, ConditionalBranchesSignedUnsigned) {
  // r1 = -1 (unsigned huge), r2 = 1. Signed: r1 < r2. Unsigned: r1 > r2.
  auto code = assemble([](Encoder& e) {
    e.mov_ri(1, static_cast<uint64_t>(-1));
    e.mov_ri(2, 1);
    e.cmp_rr(1, 2);
    e.branch(Op::kJlt, 11);  // taken (signed): skip mov r5,1 (10B) + 1 trap
    e.mov_ri(5, 1);
    e.trap();
    e.cmp_rr(1, 2);
    e.branch(Op::kJb, 11);  // NOT taken (unsigned): falls through
    e.mov_ri(6, 7);
    e.syscall();
  });
  Machine m(code);
  StepResult r = m.run();
  EXPECT_EQ(r.kind, StepKind::kSyscall);
  EXPECT_EQ(m.cpu.regs[5], 0u);  // skipped
  EXPECT_EQ(m.cpu.regs[6], 7u);  // executed
}

TEST(Exec, LoopSumsToTen) {
  // for (r1=0, r2=0; r1<5; r1++) r2 += r1;  => r2 = 10
  auto code = assemble([](Encoder& e) {
    e.mov_ri(1, 0);
    e.mov_ri(2, 0);
    size_t loop = e.offset();
    e.add_rr(2, 1);
    e.add_ri(1, 1);
    e.cmp_ri(1, 5);
    size_t j = e.branch(Op::kJlt, 0);
    e.patch_rel32(j, static_cast<int32_t>(loop) -
                         static_cast<int32_t>(j + 5));
    e.syscall();
  });
  Machine m(code);
  m.run();
  EXPECT_EQ(m.cpu.regs[2], 10u);
}

TEST(Exec, CallRetUsesStack) {
  auto code = assemble([](Encoder& e) {
    e.branch(Op::kCall, 6);  // call over the next syscall (1B) + nops
    e.syscall();             // returns here
    e.nop();                 // padding
    e.nop();
    e.nop();
    e.nop();
    e.nop();
    // callee:
    e.mov_ri(4, 77);
    e.ret();
  });
  Machine m(code);
  uint64_t sp0 = m.cpu.sp();
  StepResult r = m.run();
  EXPECT_EQ(r.kind, StepKind::kSyscall);
  EXPECT_EQ(m.cpu.regs[4], 77u);
  EXPECT_EQ(m.cpu.sp(), sp0);  // balanced
}

TEST(Exec, PushPopRoundtrip) {
  auto code = assemble([](Encoder& e) {
    e.mov_ri(1, 111);
    e.mov_ri(2, 222);
    e.push(1);
    e.push(2);
    e.pop(3);
    e.pop(4);
    e.syscall();
  });
  Machine m(code);
  m.run();
  EXPECT_EQ(m.cpu.regs[3], 222u);
  EXPECT_EQ(m.cpu.regs[4], 111u);
}

TEST(Exec, LoadStoreByteAndWord) {
  auto code = assemble([](Encoder& e) {
    e.mov_ri(1, 0x8000);
    e.mov_ri(2, 0x1122334455667788ULL);
    e.store(1, 0, 2);
    e.load(3, 1, 0);
    e.loadb(4, 1, 1);  // second byte = 0x77
    e.mov_ri(5, 0xfe);
    e.storeb(1, 0, 5);
    e.loadb(6, 1, 0);
    e.syscall();
  });
  Machine m(code);
  m.run();
  EXPECT_EQ(m.cpu.regs[3], 0x1122334455667788ULL);
  EXPECT_EQ(m.cpu.regs[4], 0x77u);
  EXPECT_EQ(m.cpu.regs[6], 0xfeu);
}

TEST(Exec, LeaComputesIpRelative) {
  auto code = assemble([](Encoder& e) {
    e.lea(1, 10);  // r1 = 0x1000 + 6 + 10
    e.syscall();
  });
  Machine m(code);
  m.run();
  EXPECT_EQ(m.cpu.regs[1], 0x1000u + 6 + 10);
}

TEST(Exec, IndirectCallAndJump) {
  auto code = assemble([](Encoder& e) {
    e.mov_ri(1, 0x1000 + 10 + 2 + 1 + 5);  // address of callee
    e.callr(1);
    e.syscall();
    e.nop();
    e.nop();
    e.nop();
    e.nop();
    e.nop();
    // callee at 0x1000+18:
    e.mov_ri(4, 5);
    e.ret();
  });
  Machine m(code);
  StepResult r = m.run();
  EXPECT_EQ(r.kind, StepKind::kSyscall);
  EXPECT_EQ(m.cpu.regs[4], 5u);
}

TEST(Exec, TrapReportsAddressWithoutAdvancing) {
  auto code = assemble([](Encoder& e) {
    e.nop();
    e.trap();
  });
  Machine m(code);
  StepResult r = m.run();
  EXPECT_EQ(r.kind, StepKind::kTrap);
  EXPECT_EQ(r.fault_addr, 0x1001u);
  EXPECT_EQ(m.cpu.ip, 0x1001u);  // ip parked on the 0xCC byte
}

TEST(Exec, DivideByZeroFaults) {
  auto code = assemble([](Encoder& e) {
    e.mov_ri(1, 5);
    e.mov_ri(2, 0);
    e.div_rr(1, 2);
  });
  Machine m(code);
  StepResult r = m.run();
  EXPECT_EQ(r.kind, StepKind::kFault);
  EXPECT_EQ(r.fault, FaultType::kFpe);
}

TEST(Exec, InvalidOpcodeFaultsIll) {
  std::vector<uint8_t> code{0x00};
  Machine m(code);
  StepResult r = m.run();
  EXPECT_EQ(r.kind, StepKind::kFault);
  EXPECT_EQ(r.fault, FaultType::kIll);
  EXPECT_EQ(r.fault_addr, 0x1000u);
}

TEST(Exec, ExecuteNonExecutableFaults) {
  auto code = assemble([](Encoder& e) {
    e.mov_ri(1, 0x8000);
    e.jmpr(1);  // jump into the RW stack region
  });
  Machine m(code);
  StepResult r = m.run();
  EXPECT_EQ(r.kind, StepKind::kFault);
  EXPECT_EQ(r.fault, FaultType::kSegv);
  EXPECT_EQ(r.fault_addr, 0x8000u);
}

TEST(Exec, LoadFromUnmappedFaults) {
  auto code = assemble([](Encoder& e) {
    e.mov_ri(1, 0x500000);
    e.load(2, 1, 0);
  });
  Machine m(code);
  StepResult r = m.run();
  EXPECT_EQ(r.kind, StepKind::kFault);
  EXPECT_EQ(r.fault, FaultType::kSegv);
  EXPECT_EQ(r.fault_addr, 0x500000u);
}

TEST(Exec, BlockEndFlagOnTerminators) {
  auto code = assemble([](Encoder& e) {
    e.nop();
    e.branch(Op::kJmp, 0);
    e.syscall();
  });
  Machine m(code);
  StepResult r1 = step(m.mem, m.cpu);
  EXPECT_FALSE(r1.block_end);  // nop
  StepResult r2 = step(m.mem, m.cpu);
  EXPECT_TRUE(r2.block_end);  // jmp
}

TEST(Exec, BlockAtMeasuresBasicBlock) {
  auto code = assemble([](Encoder& e) {
    e.mov_ri(1, 1);   // 10 bytes
    e.add_ri(1, 2);   // 6 bytes
    e.branch(Op::kJmp, 0);  // 5 bytes, terminator
    e.nop();
  });
  Machine m(code);
  BlockInfo info = block_at(m.mem, 0x1000);
  EXPECT_EQ(info.size, 21u);
  EXPECT_EQ(info.instr_count, 3u);
  EXPECT_TRUE(info.terminated);
}

TEST(Exec, BlockAtOnTrapIsOneByte) {
  std::vector<uint8_t> code{0xCC};
  Machine m(code);
  BlockInfo info = block_at(m.mem, 0x1000);
  EXPECT_EQ(info.size, 1u);
  EXPECT_EQ(info.instr_count, 1u);
  EXPECT_TRUE(info.terminated);
}

TEST(Exec, BlockAtOnInvalidByteIsEmpty) {
  std::vector<uint8_t> code{0x00};
  Machine m(code);
  BlockInfo info = block_at(m.mem, 0x1000);
  EXPECT_EQ(info.size, 0u);
  EXPECT_EQ(info.instr_count, 0u);
  EXPECT_FALSE(info.terminated);
}

TEST(Exec, BlockAtReportsTermination) {
  // A scan capped by max_bytes is a partial prefix, not a block: consumers
  // like the superblock builder must be able to tell the two apart.
  auto code = assemble([](Encoder& e) {
    for (int i = 0; i < 8; ++i) e.nop();
    e.trap();
  });
  Machine m(code);
  BlockInfo full = block_at(m.mem, 0x1000);
  EXPECT_TRUE(full.terminated);
  EXPECT_EQ(full.instr_count, 9u);
  BlockInfo capped = block_at(m.mem, 0x1000, 4);
  EXPECT_FALSE(capped.terminated);
  EXPECT_EQ(capped.instr_count, 4u);
  EXPECT_EQ(capped.size, 4u);
}


// ---------------------------------------------------------------------------
// Page generations + decode cache
// ---------------------------------------------------------------------------

TEST(PageGeneration, ExecWritesBumpDataWritesDont) {
  AddressSpace as;
  as.map(0x1000, 0x1000, kProtRead | kProtWrite | kProtExec, "wx");
  as.map(0x8000, 0x1000, kProtRead | kProtWrite, "data");
  uint64_t g0 = as.page_generation(0x1000);

  uint8_t b = 0x90;
  ASSERT_TRUE(as.write(0x1010, &b, 1, kProtWrite).ok);
  EXPECT_GT(as.page_generation(0x1000), g0);

  uint64_t gd = as.page_generation(0x8000);
  ASSERT_TRUE(as.write(0x8010, &b, 1, kProtWrite).ok);
  EXPECT_EQ(as.page_generation(0x8000), gd);  // data page: no bump
}

TEST(PageGeneration, MapProtectUnmapBump) {
  AddressSpace as;
  uint64_t g0 = as.page_generation(0x1000);
  as.map(0x1000, 0x2000, kProtRead | kProtExec, "code");
  uint64_t g1 = as.page_generation(0x1000);
  EXPECT_GT(g1, g0);
  as.protect(0x1000, 0x1000, kProtRead);
  uint64_t g2 = as.page_generation(0x1000);
  EXPECT_GT(g2, g1);
  EXPECT_EQ(as.page_generation(0x2000), g1 - g0 + as.page_generation(0x3000));
  as.unmap(0x1000, 0x2000);
  EXPECT_GT(as.page_generation(0x1000), g2);
}

TEST(PageGeneration, SlotPointerTracksLiveCounter) {
  AddressSpace as;
  as.map(0x1000, 0x1000, kProtRead | kProtWrite | kProtExec, "wx");
  const uint64_t* slot = as.page_generation_slot(0x1000);
  uint64_t before = *slot;
  uint8_t b = 0x90;
  ASSERT_TRUE(as.write(0x1000, &b, 1, kProtWrite).ok);
  EXPECT_EQ(*slot, before + 1);
}

TEST(DecodeCache, CachedExecutionMatchesUncached) {
  auto code = assemble([](Encoder& e) {
    e.mov_ri(1, 3);
    e.mov_ri(2, 4);
    size_t top = e.offset();
    e.add_rr(1, 2);
    e.mul_rr(2, 1);
    e.add_ri(0, 1);
    e.cmp_ri(0, 5);
    size_t j = e.branch(Op::kJlt, 0);
    e.patch_rel32(j, static_cast<int32_t>(top - (j + 5)));
    e.trap();
  });
  Machine plain(code);
  StepResult rp = plain.run();

  Machine cached(code);
  DecodeCache cache;
  StepResult rc;
  for (int i = 0; i < 10000; ++i) {
    rc = step(cached.mem, cached.cpu, &cache);
    if (rc.kind != StepKind::kOk) break;
  }
  EXPECT_EQ(rc.kind, rp.kind);
  EXPECT_EQ(cached.cpu.ip, plain.cpu.ip);
  EXPECT_EQ(cached.cpu.regs, plain.cpu.regs);
  EXPECT_GT(cache.hits(), 0u);  // the loop re-executed cached decodes
}

TEST(DecodeCache, PokedTrapObservedOnVeryNextStep) {
  auto code = assemble([](Encoder& e) {
    size_t top = e.offset();
    e.add_ri(0, 1);
    e.nop();
    size_t j = e.branch(Op::kJmp, 0);
    e.patch_rel32(j, static_cast<int32_t>(top - (j + 5)));
  });
  Machine m(code);
  DecodeCache cache;
  // Warm the cache through several loop iterations.
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(step(m.mem, m.cpu, &cache).kind, StepKind::kOk);
  }
  ASSERT_GT(cache.hits(), 0u);

  // Patch the instruction the cpu is about to execute (host poke, like the
  // rewriter applying an int3 block). The very next step must trap — a
  // stale cached decode here would execute the dead instruction.
  uint8_t trap = 0xCC;
  m.mem.poke(m.cpu.ip, &trap, 1);
  StepResult r = step(m.mem, m.cpu, &cache);
  EXPECT_EQ(r.kind, StepKind::kTrap);
  EXPECT_EQ(r.fault_addr, m.cpu.ip);
}

TEST(DecodeCache, GuestSelfModifyObservedMidBlock) {
  // The guest stores a TRAP byte over a later instruction of its own
  // straight-line block; run_block must take the trap, not the stale decode.
  std::vector<uint8_t> code;
  Encoder e(code);
  e.mov_ri(1, 0);        // r1 = store target (fixed up below)
  e.mov_ri(2, 0xCC);     // r2 = TRAP byte
  e.storeb(1, 0, 2);     // mem8[r1] = 0xCC  — patches `nop` below
  e.nop();               // decoded before the store lands
  size_t victim = e.offset();
  e.nop();               // the store targets this byte
  e.nop();
  e.trap();
  // Fix the store target now that the layout is known.
  std::vector<uint8_t> fixed;
  Encoder e2(fixed);
  e2.mov_ri(1, 0x1000 + victim);
  e2.mov_ri(2, 0xCC);
  e2.storeb(1, 0, 2);
  e2.nop();
  e2.nop();
  e2.nop();
  e2.trap();

  Machine m(fixed);
  // Code page must be writable for the guest store.
  m.mem.protect(0x1000, 0x1000, kProtRead | kProtWrite | kProtExec);
  DecodeCache cache;
  uint64_t retired = 0;
  StepResult r = run_block(m.mem, m.cpu, &cache, 10000, retired);
  EXPECT_EQ(r.kind, StepKind::kTrap);
  EXPECT_EQ(r.fault_addr, 0x1000u + victim);
  EXPECT_EQ(retired, 5u);  // movri, movri, storeb, nop, trap-attempt
}

TEST(DecodeCache, RunBlockStopsAtTerminatorAndBudget) {
  auto code = assemble([](Encoder& e) {
    e.mov_ri(1, 1);
    e.add_rr(1, 1);
    size_t j = e.branch(Op::kJmp, 0);
    e.patch_rel32(j, 0);  // fall through to next instruction
    e.nop();
    e.trap();
  });
  Machine m(code);
  DecodeCache cache;
  uint64_t retired = 0;
  StepResult r = run_block(m.mem, m.cpu, &cache, 10000, retired);
  EXPECT_EQ(r.kind, StepKind::kOk);
  EXPECT_TRUE(r.block_end);  // stopped at the jmp terminator
  EXPECT_EQ(retired, 3u);

  // Budget smaller than the block: stops mid-block with exact accounting.
  Machine m2(code);
  DecodeCache cache2;
  retired = 0;
  r = run_block(m2.mem, m2.cpu, &cache2, 2, retired);
  EXPECT_EQ(r.kind, StepKind::kOk);
  EXPECT_FALSE(r.block_end);
  EXPECT_EQ(retired, 2u);
}

TEST(DecodeCache, InstructionStraddlingPageBoundary) {
  // Place a 10-byte mov_ri so it crosses the 0x1000/0x2000 page edge; the
  // cache must execute it correctly via the uncached path.
  std::vector<uint8_t> prefix;
  Encoder e(prefix);
  while (prefix.size() < kPageSize - 5) e.nop();
  size_t mov_at = e.offset();
  e.mov_ri(7, 0x1122334455667788ull);  // bytes [kPageSize-5, kPageSize+5)
  e.trap();

  AddressSpace mem;
  mem.map(0x1000, page_ceil(prefix.size()), kProtRead | kProtExec, "code");
  mem.poke(0x1000, prefix.data(), prefix.size());
  Cpu cpu;
  cpu.ip = 0x1000;
  DecodeCache cache;
  uint64_t retired = 0;
  StepResult r = run_block(mem, cpu, &cache, 2 * kPageSize, retired);
  ASSERT_EQ(r.kind, StepKind::kTrap);
  EXPECT_EQ(cpu.regs[7], 0x1122334455667788ull);
  EXPECT_EQ(r.fault_addr, 0x1000 + mov_at + 10);
}

TEST(DecodeCache, CopyAssignedAddressSpaceInvalidatesByAsid) {
  auto code = assemble([](Encoder& e) {
    e.add_ri(0, 1);
    e.trap();
  });
  Machine m(code);
  DecodeCache cache;
  ASSERT_EQ(step(m.mem, m.cpu, &cache).kind, StepKind::kOk);
  ASSERT_GT(cache.cached_pages(), 0u);

  // Rebuild the address space via copy-assign (what checkpoint restore
  // does): the fresh asid must force the cache to drop everything.
  AddressSpace rebuilt;
  rebuilt.map(0x1000, 0x1000, kProtRead | kProtExec, "code2");
  uint8_t trap = 0xCC;
  rebuilt.poke(0x1000, &trap, 1);
  m.mem = rebuilt;
  m.cpu.ip = 0x1000;
  StepResult r = step(m.mem, m.cpu, &cache);
  EXPECT_EQ(r.kind, StepKind::kTrap);
}

TEST(DecodeCache, StatsInvariantAcrossFaultMatrix) {
  // Every cache-served fetch attempt must count exactly one hit or miss —
  // hits() + misses() == attempted instructions. The fast path used to
  // double-count a miss when its slot fill failed (non-executable fetch):
  // the no-progress fallback re-entered DecodeCache::fetch, which counted
  // the same attempt again.
  {
    // Warm loop, then a jump into the non-executable stack: the faulting
    // fetch at 0x8000 is one attempt and must be exactly one miss.
    auto code = assemble([](Encoder& e) {
      size_t top = e.offset();
      e.add_ri(0, 1);
      e.cmp_ri(0, 20);
      size_t j = e.branch(Op::kJlt, 0);
      e.patch_rel32(j,
                    static_cast<int32_t>(top) - static_cast<int32_t>(j + 5));
      e.mov_ri(1, 0x8000);
      e.jmpr(1);
    });
    Machine m(code);
    DecodeCache cache;
    uint64_t attempts = 0;
    StepResult r{};
    for (int i = 0; i < 1000 && r.kind == StepKind::kOk; ++i) {
      uint64_t n = 0;
      r = run_block(m.mem, m.cpu, &cache, 10000, n);
      attempts += n;
    }
    EXPECT_EQ(r.kind, StepKind::kFault);
    EXPECT_EQ(r.fault_addr, 0x8000u);
    EXPECT_EQ(cache.hits() + cache.misses(), attempts);
  }
  {
    // Undecodable byte: the first attempt fills a kBad slot (one miss);
    // repeated attempts are cache-served SIGILLs (hits).
    std::vector<uint8_t> code{0x00};
    Machine m(code);
    DecodeCache cache;
    uint64_t attempts = 0;
    for (int i = 0; i < 3; ++i) {
      uint64_t n = 0;
      StepResult r = run_block(m.mem, m.cpu, &cache, 10, n);
      EXPECT_EQ(r.kind, StepKind::kFault);
      EXPECT_EQ(r.fault, FaultType::kIll);
      attempts += n;
    }
    EXPECT_EQ(attempts, 3u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits() + cache.misses(), attempts);
  }
  {
    // Page-straddling instruction: never cached, one miss per attempt.
    std::vector<uint8_t> code;
    Encoder e(code);
    while (code.size() < kPageSize - 5) e.nop();
    e.mov_ri(7, 1);  // straddles the page edge
    e.trap();
    AddressSpace mem;
    mem.map(0x1000, page_ceil(code.size()), kProtRead | kProtExec, "code");
    mem.poke(0x1000, code.data(), code.size());
    Cpu cpu;
    cpu.ip = 0x1000;
    DecodeCache cache;
    uint64_t attempts = 0;
    StepResult r{};
    while (r.kind == StepKind::kOk) {
      uint64_t n = 0;
      r = run_block(mem, cpu, &cache, 100000, n);
      attempts += n;
    }
    EXPECT_EQ(r.kind, StepKind::kTrap);
    EXPECT_EQ(cpu.regs[7], 1u);
    EXPECT_EQ(cache.hits() + cache.misses(), attempts);
  }
}

TEST(DecodeCache, RunBlockObservesPokeAtBlockEntry) {
  // A generation bump between run_block rounds invalidates the cached page
  // even though the slot array still holds the stale decode: the fast path
  // re-checks the live generation and must take the trap with exactly one
  // attempted instruction.
  auto code = assemble([](Encoder& e) {
    size_t top = e.offset();
    e.add_ri(0, 1);
    e.nop();
    size_t j = e.branch(Op::kJmp, 0);
    e.patch_rel32(j, static_cast<int32_t>(top) - static_cast<int32_t>(j + 5));
  });
  Machine m(code);
  DecodeCache cache;
  for (int i = 0; i < 10; ++i) {
    uint64_t n = 0;
    ASSERT_EQ(run_block(m.mem, m.cpu, &cache, 3, n).kind, StepKind::kOk);
  }
  ASSERT_GT(cache.hits(), 0u);
  uint8_t trap = 0xCC;
  m.mem.poke(m.cpu.ip, &trap, 1);
  uint64_t n = 0;
  StepResult r = run_block(m.mem, m.cpu, &cache, 100, n);
  EXPECT_EQ(r.kind, StepKind::kTrap);
  EXPECT_EQ(r.fault_addr, m.cpu.ip);
  EXPECT_EQ(n, 1u);
}

// ---------------------------------------------------------------------------
// Superblock cache
// ---------------------------------------------------------------------------

/// Drives the superblock-aware run_block the way the scheduler does: one
/// call per quantum until a non-kOk result or `limit` total attempts.
StepResult run_sb(Machine& m, DecodeCache& dc, SuperblockCache& sbc,
                  uint64_t quantum, uint64_t limit, uint64_t& attempts) {
  StepResult r{};
  attempts = 0;
  while (attempts < limit) {
    uint64_t budget = std::min(quantum, limit - attempts);
    uint64_t n = 0;
    r = run_block(m.mem, m.cpu, &dc, &sbc, budget, n);
    attempts += n;
    if (r.kind != StepKind::kOk) return r;
    if (n == 0) break;
  }
  return r;
}

TEST(Superblock, MatchesInterpreterOnServingLoop) {
  auto code = assemble([](Encoder& e) {
    size_t top = e.offset();
    e.add_ri(1, 1);
    e.add_rr(2, 1);
    e.cmp_ri(1, 500);
    size_t j = e.branch(Op::kJlt, 0);
    e.patch_rel32(j, static_cast<int32_t>(top) - static_cast<int32_t>(j + 5));
    e.trap();
  });
  Machine plain(code);
  StepResult rp = plain.run(100000);

  Machine fused(code);
  DecodeCache dc;
  SuperblockCache sbc;
  uint64_t attempts = 0;
  StepResult rf = run_sb(fused, dc, sbc, 256, 100000, attempts);
  EXPECT_EQ(rf.kind, rp.kind);
  EXPECT_EQ(rf.kind, StepKind::kTrap);
  EXPECT_EQ(fused.cpu.ip, plain.cpu.ip);
  EXPECT_EQ(fused.cpu.regs, plain.cpu.regs);
  EXPECT_EQ(attempts, 2001u);  // 500 iterations x 4 + the trap attempt
  EXPECT_GT(sbc.builds(), 0u);
  EXPECT_GT(sbc.sb_instrs(), 0u);
}

TEST(Superblock, MatchesInterpreterAcrossCallRet) {
  std::vector<uint8_t> code;
  Encoder e(code);
  e.mov_ri(1, 0);
  size_t top = e.offset();
  size_t c = e.branch(Op::kCall, 0);
  e.add_ri(1, 1);
  e.cmp_ri(1, 50);
  size_t j = e.branch(Op::kJlt, 0);
  e.patch_rel32(j, static_cast<int32_t>(top) - static_cast<int32_t>(j + 5));
  e.syscall();
  size_t callee = e.offset();
  e.add_ri(2, 3);
  e.ret();
  e.patch_rel32(c, static_cast<int32_t>(callee) - static_cast<int32_t>(c + 5));

  Machine plain(code);
  StepResult rp = plain.run(100000);
  Machine fused(code);
  DecodeCache dc;
  SuperblockCache sbc;
  uint64_t attempts = 0;
  StepResult rf = run_sb(fused, dc, sbc, 256, 100000, attempts);
  EXPECT_EQ(rf.kind, StepKind::kSyscall);
  EXPECT_EQ(rf.kind, rp.kind);
  EXPECT_EQ(fused.cpu.ip, plain.cpu.ip);
  EXPECT_EQ(fused.cpu.regs, plain.cpu.regs);
  EXPECT_EQ(fused.cpu.sp(), plain.cpu.sp());
}

TEST(Superblock, BuildsAfterThreshold) {
  auto code = assemble([](Encoder& e) {
    e.add_ri(1, 1);
    e.nop();
    e.trap();
  });
  Machine m(code);
  DecodeCache dc;
  SuperblockCache sbc;
  for (uint32_t i = 0; i < SuperblockCache::kHotThreshold + 2; ++i) {
    m.cpu.ip = 0x1000;
    uint64_t n = 0;
    StepResult r = run_block(m.mem, m.cpu, &dc, &sbc, 256, n);
    ASSERT_EQ(r.kind, StepKind::kTrap);
    ASSERT_EQ(n, 3u);
    if (i + 1 < SuperblockCache::kHotThreshold) {
      EXPECT_EQ(sbc.builds(), 0u);  // still warming
    }
  }
  EXPECT_EQ(sbc.builds(), 1u);
  EXPECT_EQ(sbc.superblocks(), 1u);
  EXPECT_GT(sbc.entries(), 0u);
}

TEST(Superblock, TrapChargedOncePerAttemptOnBudgetBoundary) {
  // Six nops then a trap. With budget 6 the trap is NOT attempted (kOk, ip
  // parked on it, six charged); re-entry charges the trap exactly once.
  // Must hold identically on the interpreter and superblock paths.
  auto code = assemble([](Encoder& e) {
    for (int i = 0; i < 6; ++i) e.nop();
    e.trap();
  });
  {
    Machine m(code);
    DecodeCache dc;
    uint64_t n = 0;
    StepResult r = run_block(m.mem, m.cpu, &dc, 6, n);
    EXPECT_EQ(r.kind, StepKind::kOk);
    EXPECT_EQ(n, 6u);
    EXPECT_EQ(m.cpu.ip, 0x1006u);
    r = run_block(m.mem, m.cpu, &dc, 100, n);
    EXPECT_EQ(r.kind, StepKind::kTrap);
    EXPECT_EQ(r.fault_addr, 0x1006u);
    EXPECT_EQ(n, 1u);
  }
  {
    Machine m(code);
    DecodeCache dc;
    SuperblockCache sbc;
    for (uint32_t i = 0; i < SuperblockCache::kHotThreshold + 1; ++i) {
      m.cpu.ip = 0x1000;
      uint64_t n = 0;
      ASSERT_EQ(run_block(m.mem, m.cpu, &dc, &sbc, 256, n).kind,
                StepKind::kTrap);
    }
    ASSERT_GT(sbc.superblocks(), 0u);
    m.cpu.ip = 0x1000;
    uint64_t n = 0;
    StepResult r = run_block(m.mem, m.cpu, &dc, &sbc, 6, n);
    EXPECT_EQ(r.kind, StepKind::kOk);
    EXPECT_EQ(n, 6u);
    EXPECT_EQ(m.cpu.ip, 0x1006u);  // budget exit mid-trace
    r = run_block(m.mem, m.cpu, &dc, &sbc, 100, n);  // re-enters mid-trace
    EXPECT_EQ(r.kind, StepKind::kTrap);
    EXPECT_EQ(r.fault_addr, 0x1006u);
    EXPECT_EQ(n, 1u);
  }
}

TEST(Superblock, PatchRetiresTraceBeforeNextInstruction) {
  // The acceptance contract: patch a page a hot trace spans (the rewriter's
  // int3 poke) and the patch must be visible on the very next executed
  // instruction — the stale trace retires instead of running.
  auto code = assemble([](Encoder& e) {
    size_t top = e.offset();
    e.add_ri(1, 1);
    e.cmp_ri(1, 1000000);
    size_t j = e.branch(Op::kJlt, 0);
    e.patch_rel32(j, static_cast<int32_t>(top) - static_cast<int32_t>(j + 5));
    e.trap();
  });
  Machine m(code);
  DecodeCache dc;
  SuperblockCache sbc;
  for (int q = 0; q < 20; ++q) {
    uint64_t n = 0;
    ASSERT_EQ(run_block(m.mem, m.cpu, &dc, &sbc, 256, n).kind, StepKind::kOk);
  }
  ASSERT_GT(sbc.builds(), 0u);
  ASSERT_GT(sbc.sb_instrs(), 0u);

  uint64_t retires_before = sbc.retires();
  uint8_t trap = 0xCC;
  uint64_t target = m.cpu.ip;  // mid-loop, inside the trace
  m.mem.poke(target, &trap, 1);
  uint64_t n = 0;
  StepResult r = run_block(m.mem, m.cpu, &dc, &sbc, 256, n);
  EXPECT_EQ(r.kind, StepKind::kTrap);
  EXPECT_EQ(r.fault_addr, target);
  EXPECT_EQ(n, 1u);  // nothing retired from the stale trace
  EXPECT_EQ(sbc.retires(), retires_before + 1);
}

TEST(Superblock, SelfModifyingStoreDeoptsMidTrace) {
  // The guest patches an instruction of its own hot loop; the store retires
  // inside the trace, then dispatch must deoptimize so the interpreter
  // refetches the patched byte as the very next instruction.
  constexpr uint64_t kPatchIter = SuperblockCache::kHotThreshold + 2;
  std::vector<uint8_t> probe;
  Encoder pe(probe);
  pe.mov_ri(2, 0);
  pe.mov_ri(3, 0xCC);
  size_t top = pe.offset();
  pe.add_ri(1, 1);
  pe.cmp_ri(1, kPatchIter);
  size_t skip = pe.branch(Op::kJne, 0);
  pe.storeb(2, 0, 3);  // patches the nop below on iteration kPatchIter
  size_t victim = pe.offset();
  pe.patch_rel32(skip,
                 static_cast<int32_t>(victim) - static_cast<int32_t>(skip + 5));
  pe.nop();
  pe.cmp_ri(1, 1000000);
  size_t back = pe.branch(Op::kJlt, 0);
  pe.patch_rel32(back,
                 static_cast<int32_t>(top) - static_cast<int32_t>(back + 5));
  pe.trap();
  // Second pass with the store target resolved.
  std::vector<uint8_t> code;
  Encoder e(code);
  e.mov_ri(2, 0x1000 + victim);
  e.mov_ri(3, 0xCC);
  e.add_ri(1, 1);
  e.cmp_ri(1, kPatchIter);
  size_t skip2 = e.branch(Op::kJne, 0);
  e.storeb(2, 0, 3);
  e.patch_rel32(skip2,
                static_cast<int32_t>(victim) - static_cast<int32_t>(skip2 + 5));
  e.nop();
  e.cmp_ri(1, 1000000);
  size_t back2 = e.branch(Op::kJlt, 0);
  e.patch_rel32(back2,
                static_cast<int32_t>(top) - static_cast<int32_t>(back2 + 5));
  e.trap();

  Machine m(code);
  m.mem.protect(0x1000, 0x1000, kProtRead | kProtWrite | kProtExec);
  DecodeCache dc;
  SuperblockCache sbc;
  uint64_t attempts = 0;
  StepResult r = run_sb(m, dc, sbc, 256, 1000000, attempts);
  EXPECT_EQ(r.kind, StepKind::kTrap);
  EXPECT_EQ(r.fault_addr, 0x1000 + victim);
  EXPECT_EQ(m.cpu.regs[1], kPatchIter);  // stopped on the patching iteration
  EXPECT_GT(sbc.builds(), 0u);
  EXPECT_EQ(sbc.deopts(), 1u);
}

TEST(Superblock, TraceSpansPageStraddlingInstruction) {
  // A hot loop whose body straddles the page boundary: the builder fuses
  // across the straddling instruction (the decode cache never serves it)
  // and the trace depends on BOTH spanned pages' generations.
  std::vector<uint8_t> code;
  Encoder e(code);
  size_t j0 = e.branch(Op::kJmp, 0);
  while (code.size() < kPageSize - 20) e.nop();
  size_t top = e.offset();
  e.patch_rel32(j0, static_cast<int32_t>(top) - static_cast<int32_t>(j0 + 5));
  e.add_ri(1, 1);                       // [P-20, P-14)
  e.cmp_ri(1, 40);                      // [P-14, P-8)
  e.mov_ri(7, 0x1122334455667788ull);   // [P-8, P+2): straddles the edge
  size_t j = e.branch(Op::kJlt, 0);
  e.patch_rel32(j, static_cast<int32_t>(top) - static_cast<int32_t>(j + 5));
  size_t trap_at = e.offset();
  e.trap();

  Machine m(code);
  DecodeCache dc;
  SuperblockCache sbc;
  uint64_t attempts = 0;
  StepResult r = run_sb(m, dc, sbc, 256, 100000, attempts);
  EXPECT_EQ(r.kind, StepKind::kTrap);
  EXPECT_EQ(m.cpu.regs[1], 40u);
  EXPECT_EQ(m.cpu.regs[7], 0x1122334455667788ull);
  ASSERT_EQ(sbc.superblocks(), 1u);

  // A write to the SECOND page alone must invalidate the trace.
  uint64_t retires_before = sbc.retires();
  uint8_t trap = 0xCC;
  m.mem.poke(0x1000 + trap_at, &trap, 1);  // page 2; same byte, still a write
  m.cpu.ip = 0x1000 + top;
  m.cpu.regs[1] = 0;
  r = run_sb(m, dc, sbc, 256, 100000, attempts);
  EXPECT_EQ(r.kind, StepKind::kTrap);
  EXPECT_EQ(m.cpu.regs[1], 40u);
  EXPECT_EQ(sbc.retires(), retires_before + 1);
}

TEST(Superblock, RefusesUnterminatedEntry) {
  // A page of nops with no terminator: the block scan comes back
  // unterminated and the builder must refuse to fuse the partial prefix.
  std::vector<uint8_t> code(kPageSize, 0x90);
  Machine m(code);
  DecodeCache dc;
  SuperblockCache sbc;
  for (int i = 0; i < 20; ++i) {
    m.cpu.ip = 0x1000;
    uint64_t n = 0;
    StepResult r = run_block(m.mem, m.cpu, &dc, &sbc, 100000, n);
    ASSERT_EQ(r.kind, StepKind::kFault);  // ran off the mapping
  }
  EXPECT_EQ(sbc.builds(), 0u);
  EXPECT_EQ(sbc.superblocks(), 0u);
}

TEST(Superblock, AddressSpaceRebuildDropsTraces) {
  auto code = assemble([](Encoder& e) {
    size_t top = e.offset();
    e.add_ri(1, 1);
    e.cmp_ri(1, 1000000);
    size_t j = e.branch(Op::kJlt, 0);
    e.patch_rel32(j, static_cast<int32_t>(top) - static_cast<int32_t>(j + 5));
    e.trap();
  });
  Machine m(code);
  DecodeCache dc;
  SuperblockCache sbc;
  for (int q = 0; q < 20; ++q) {
    uint64_t n = 0;
    ASSERT_EQ(run_block(m.mem, m.cpu, &dc, &sbc, 256, n).kind, StepKind::kOk);
  }
  ASSERT_GT(sbc.superblocks(), 0u);

  // Rebuild the address space via copy-assign (checkpoint restore): the
  // fresh asid must drop every trace before anything dereferences stale
  // generation-slot pointers.
  AddressSpace rebuilt;
  rebuilt.map(0x1000, 0x1000, kProtRead | kProtExec, "code2");
  uint8_t trap = 0xCC;
  rebuilt.poke(0x1000, &trap, 1);
  m.mem = rebuilt;
  m.cpu.ip = 0x1000;
  uint64_t n = 0;
  StepResult r = run_block(m.mem, m.cpu, &dc, &sbc, 256, n);
  EXPECT_EQ(r.kind, StepKind::kTrap);
  EXPECT_EQ(sbc.superblocks(), 0u);
}

}  // namespace
}  // namespace dynacut::vm
